package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/flight"
	"repro/internal/metrics"
	"repro/internal/resultio"
	"repro/internal/solution"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/trace"
	"repro/internal/vrptw"
)

// State is a job's position in its lifecycle:
//
//	queued -> running -> done | failed
//	queued | running  -> canceled
type State string

// The job states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// InstanceSpec selects a job's CVRPTW instance: either inline Solomon-format
// text, or a generated instance named by (class, n, seed) — the same knobs
// as cmd/vrptwgen. Exactly one of the two forms must be used.
type InstanceSpec struct {
	// Solomon is the full text of a Solomon-format instance file.
	Solomon string `json:"solomon,omitempty"`
	// Class is a generator class name (R1, C1, RC1, R2, C2, RC2).
	Class string `json:"class,omitempty"`
	// N is the generated customer count.
	N int `json:"n,omitempty"`
	// Seed is the generator seed.
	Seed uint64 `json:"seed,omitempty"`
}

// JobSpec is the body of POST /v1/jobs. Zero-valued fields take the solver
// defaults (core.DefaultConfig, clamped by the service's limits).
type JobSpec struct {
	Instance InstanceSpec `json:"instance"`
	// Algorithm is a TSMO variant name (sequential, synchronous,
	// asynchronous, collaborative, combined). Default: sequential.
	Algorithm string `json:"algorithm,omitempty"`
	// Processors is the process count for the parallel variants.
	// Default: 1 for sequential, 3 otherwise.
	Processors int `json:"processors,omitempty"`
	// Seed is the search seed.
	Seed uint64 `json:"seed,omitempty"`
	// MaxEvaluations is the evaluation budget, clamped by the service's
	// Config.MaxEvaluations.
	MaxEvaluations int `json:"max_evaluations,omitempty"`
	// MaxSeconds is the in-run runtime budget (virtual seconds on the sim
	// backend, wall seconds on the goroutine backend).
	MaxSeconds float64 `json:"max_seconds,omitempty"`
	// WallSeconds is a real-time deadline enforced by the service
	// regardless of backend; the run is stopped (keeping its partial
	// front) when it expires. Clamped by Config.MaxWallSeconds, which is
	// also the default when this is 0.
	WallSeconds float64 `json:"wall_seconds,omitempty"`
	// Neighborhood, Tenure, Archive, Nondom, RestartIters and Islands
	// override the corresponding search parameters when positive.
	Neighborhood int `json:"neighborhood,omitempty"`
	Tenure       int `json:"tenure,omitempty"`
	Archive      int `json:"archive,omitempty"`
	Nondom       int `json:"nondom,omitempty"`
	RestartIters int `json:"restart_iters,omitempty"`
	Islands      int `json:"islands,omitempty"`
	// GranularK switches the searchers to granular neighborhoods drawn
	// from the k-nearest arc graph; EvalWorkers shards candidate delta
	// evaluation over that many goroutines (bit-identical to serial).
	GranularK   int `json:"granular_k,omitempty"`
	EvalWorkers int `json:"eval_workers,omitempty"`
	// Backend selects the runtime: "sim" (deterministic machine
	// simulator, the default) or "goroutine" (real concurrency).
	Backend string `json:"backend,omitempty"`
	// SampleEvery enables convergence samples in the stored result.
	SampleEvery int `json:"sample_every,omitempty"`
	// Traceparent is a W3C trace-context header value tying the job's
	// spans to a caller-initiated distributed trace. The HTTP handler
	// fills it from the request's traceparent header (which wins over a
	// body value); malformed values start a fresh trace. See DESIGN.md §12.
	Traceparent string `json:"traceparent,omitempty"`
	// IdempotencyKey, when non-empty, makes the submission retry-safe: a
	// second submission carrying a key the service has already accepted
	// returns the original job instead of creating a duplicate. Keys live
	// as long as their job is retained and survive daemon restarts on
	// durable services.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Tenant is the owning tenant — the scheduler lane the job waits
	// in. The service sets it from the request's credentials (a
	// client-supplied value is overwritten), and it is journaled so
	// recovery re-queues the job into the same lane.
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the job within its tenant's lane: higher
	// dispatches first, equal priorities FIFO. Clamped to the tenant
	// policy's MaxPriority; it never affects other tenants' shares.
	Priority int `json:"priority,omitempty"`
	// DeadlineSeconds, when positive, is a client deadline relative to
	// submission: a job still queued past it is shed (failed, never
	// started), and a running job's searcher context is bounded by it —
	// deadline propagation from client to search loop. After a crash,
	// recovery re-arms it relative to the restart.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// ShareGroup, ShareShard and ShareShards make the job one shard of a
	// cluster-share group: its archive-entering solutions are published on
	// GET /v1/shares/{group}/{shard} and, when ShareShards > 1, the
	// sibling shards' batches are gathered through the dialer configured
	// in Config.ShareDial and folded into the search every ShareEvery
	// master iterations (0 picks the solver default). Set by the cluster
	// coordinator when fanning out a "cluster_share" job.
	ShareGroup  string `json:"share_group,omitempty"`
	ShareShard  int    `json:"share_shard,omitempty"`
	ShareShards int    `json:"share_shards,omitempty"`
	ShareEvery  int    `json:"share_every,omitempty"`
	// Resume, when non-empty, is an encoded checkpoint envelope
	// (core.EncodeCheckpoint) the job continues from instead of starting
	// fresh — the migration path: the coordinator ships a dead node's last
	// checkpoint to a survivor. The rest of the spec must describe the
	// same run (the checkpoint's digests are verified on resume).
	Resume json.RawMessage `json:"resume,omitempty"`
}

// Event is one entry of a job's event stream: service lifecycle events
// (queued, started, done, failed, canceled) interleaved with solver events
// tapped from the telemetry layer (init, archive_accept, restart,
// decision, ...). Seq increases by one per event and doubles as the SSE
// event id, so clients resume with Last-Event-ID.
type Event struct {
	Seq    int            `json:"seq"`
	TS     time.Time      `json:"ts"`
	Name   string         `json:"name"`
	Fields map[string]any `json:"fields,omitempty"`
}

// FrontPoint is one member of a job's live Pareto-front mirror, built from
// archive_accept events as they stream out of the searchers.
type FrontPoint struct {
	Distance  float64 `json:"distance"`
	Vehicles  float64 `json:"vehicles"`
	Tardiness float64 `json:"tardiness"`
	Feasible  bool    `json:"feasible"`
	Proc      int     `json:"proc"`
	Iteration int     `json:"iteration"`
	Time      float64 `json:"time"`
}

func (p FrontPoint) objectives() solution.Objectives {
	return solution.Objectives{Distance: p.Distance, Vehicles: p.Vehicles, Tardiness: p.Tardiness}
}

// maxEvents bounds a job's retained event buffer. Older events are dropped
// oldest-first; an SSE resume pointing before the retained window restarts
// from the oldest retained event.
const maxEvents = 16384

// jobTraceRingCap bounds a job's completed-span ring. The ring array is
// allocated up front per job, so this is deliberately smaller than
// trace.DefaultRingCap; long parallel runs overflow it by dropping the
// oldest eval-shard leaves while the long-lived lifecycle spans — which
// end last — always survive.
const jobTraceRingCap = 1024

// Job is one solve job owned by a Service.
type Job struct {
	// ID is the service-assigned job id.
	ID string
	// Spec echoes the submitted specification.
	Spec JobSpec

	svc      *Service
	alg      core.Algorithm
	cfg      core.Config
	in       *vrptw.Instance
	instName string
	backend  string
	wall     time.Duration
	tel      *telemetry.Telemetry
	ctx      context.Context
	cancel   context.CancelFunc
	doneOnce sync.Once

	// tr is the job's span recorder; rootSpan ("job") covers the whole
	// lifecycle and parents every other span, queueSpan ("queue") the
	// submit-to-start wait. fr is the flight recorder, fed by the solver's
	// periodic snapshot events.
	tr        *trace.Trace
	rootSpan  *trace.Span
	queueSpan *trace.Span
	fr        *flight.Ring

	// resume is the checkpoint a re-queued (journal recovery) or migrated
	// (JobSpec.Resume) job continues from; restored is the persisted
	// result a recovered terminal job serves. Both are set before the job
	// is reachable.
	resume   *core.Checkpoint
	restored *resultio.FrontFile

	// deadline is the absolute client deadline (JobSpec.DeadlineSeconds
	// past submission), zero when none. recoveredPending marks a
	// recovery-requeued job whose first dispatch (or cancellation)
	// decrements the service's recovering gauge, exactly once.
	deadline         time.Time
	recoveredPending bool
	recoveredOnce    sync.Once

	// mutScheduled counts mutations accepted onto this job, enforcing
	// the tenant policy's per-job MutationBudget. Guarded by j.mu.
	mutScheduled int

	// dyn is the job's live-mutation schedule, nil when the job cannot
	// accept instance mutations (no checkpoint barriers, or a
	// cluster-share shard). Created in newJob so PATCHes land while the
	// job is still queued; armCheckpoints wires it into the run.
	// recoveredMuts are the journaled mutate records recovery replayed —
	// retained so journal compaction keeps them (set before the job is
	// reachable, read before the workers start).
	dyn           *dynamic.Schedule
	recoveredMuts []journalRecord

	// Latest checkpoint envelope, kept in memory for every checkpointed
	// job (durable or not) so GET /v1/jobs/{id}/checkpoint can hand the
	// cluster coordinator a migration artifact. Guarded by ckptMu, not
	// j.mu: the sink runs on a solver goroutine and must never contend
	// with the observe hook.
	ckptMu      sync.Mutex
	lastCkpt    []byte
	lastBarrier int

	mu         sync.Mutex
	state      State
	userCancel bool
	submitted  time.Time
	started    time.Time
	finished   time.Time
	errText    string
	events     []Event
	firstSeq   int // Seq of events[0]
	lastSeq    int
	notify     chan struct{}
	front      []FrontPoint
	hvRef      solution.Objectives
	haveRef    bool
	result     *core.Result
	firstPoint time.Time // when the first front point arrived (SLO histogram)
	// pendingMarker tags the next flight-recorder sample with the most
	// recent mutation epoch ("mutation@12"), so tsmo-compare can align
	// recordings across a mutation.
	pendingMarker string
}

// newJob validates a spec against the service limits and materializes the
// instance and solver configuration. Errors are submission errors (HTTP 400).
func newJob(spec JobSpec, limits *Config) (*Job, error) {
	j := &Job{
		Spec:    spec,
		state:   StateQueued,
		notify:  make(chan struct{}),
		backend: spec.Backend,
	}

	switch {
	case spec.Instance.Solomon != "" && spec.Instance.Class != "":
		return nil, fmt.Errorf("instance: solomon text and generator class are mutually exclusive")
	case spec.Instance.Solomon != "":
		in, err := vrptw.ParseSolomon(strings.NewReader(spec.Instance.Solomon))
		if err != nil {
			return nil, fmt.Errorf("instance: %w", err)
		}
		j.in = in
		j.instName = in.Name
	case spec.Instance.Class != "":
		class, err := vrptw.ParseClass(spec.Instance.Class)
		if err != nil {
			return nil, fmt.Errorf("instance: %w", err)
		}
		in, err := vrptw.Generate(vrptw.GenConfig{Class: class, N: spec.Instance.N, Seed: spec.Instance.Seed})
		if err != nil {
			return nil, fmt.Errorf("instance: %w", err)
		}
		j.in = in
		j.instName = in.Name
	default:
		return nil, fmt.Errorf("instance: provide either inline solomon text or a generator class")
	}
	if limits.MaxCustomers > 0 && j.in.N() > limits.MaxCustomers {
		return nil, fmt.Errorf("instance: %d customers exceeds the service limit of %d", j.in.N(), limits.MaxCustomers)
	}

	algName := spec.Algorithm
	if algName == "" {
		algName = "sequential"
	}
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		return nil, err
	}
	j.alg = alg

	cfg := core.DefaultConfig()
	cfg.Seed = spec.Seed
	cfg.Processors = spec.Processors
	if cfg.Processors == 0 {
		if alg == core.Sequential {
			cfg.Processors = 1
		} else {
			cfg.Processors = 3
		}
	}
	if limits.MaxProcessors > 0 && cfg.Processors > limits.MaxProcessors {
		return nil, fmt.Errorf("processors: %d exceeds the service limit of %d", cfg.Processors, limits.MaxProcessors)
	}
	if spec.MaxEvaluations > 0 {
		cfg.MaxEvaluations = spec.MaxEvaluations
	}
	if limits.MaxEvaluations > 0 && cfg.MaxEvaluations > limits.MaxEvaluations {
		return nil, fmt.Errorf("max_evaluations: %d exceeds the service limit of %d", cfg.MaxEvaluations, limits.MaxEvaluations)
	}
	cfg.MaxSeconds = spec.MaxSeconds
	if spec.Neighborhood > 0 {
		cfg.NeighborhoodSize = spec.Neighborhood
	}
	if spec.Tenure > 0 {
		cfg.TabuTenure = spec.Tenure
	}
	if spec.Archive > 0 {
		cfg.ArchiveSize = spec.Archive
	}
	if spec.Nondom > 0 {
		cfg.NondomSize = spec.Nondom
	}
	if spec.RestartIters > 0 {
		cfg.RestartIterations = spec.RestartIters
	}
	cfg.Islands = spec.Islands
	cfg.GranularK = spec.GranularK
	cfg.EvalWorkers = spec.EvalWorkers
	if err := validateShareSpec(&spec, limits); err != nil {
		return nil, err
	}
	cfg.ShareEvery = spec.ShareEvery
	if len(spec.Resume) > 0 {
		ck, err := core.DecodeCheckpoint(spec.Resume)
		if err != nil {
			return nil, fmt.Errorf("resume: %w", err)
		}
		j.resume = ck
		// Seed the in-memory checkpoint cache: if this node dies too, the
		// job is migratable again even before its first new barrier.
		j.lastCkpt = append([]byte(nil), spec.Resume...)
		j.lastBarrier = ck.Barrier
	}
	cfg.SampleEvery = spec.SampleEvery
	if cfg.SampleEvery <= 0 {
		// Default the sampling grid so every job leaves a flight recording:
		// ~64 samples across the budget, but never so dense that sampling
		// overhead shows on small jobs. Deterministic in the spec (recovery
		// rebuilds the job from its journaled spec and lands on the same
		// grid), so resumed runs keep bit-identical trajectories.
		cfg.SampleEvery = cfg.MaxEvaluations / 64
		if cfg.SampleEvery < 1000 {
			cfg.SampleEvery = 1000
		}
	}

	switch spec.Backend {
	case "", "sim":
		j.backend = "sim"
	case "goroutine":
		j.backend = "goroutine"
	default:
		return nil, fmt.Errorf("backend: unknown backend %q (want sim or goroutine)", spec.Backend)
	}

	wall := spec.WallSeconds
	if limits.MaxWallSeconds > 0 && (wall <= 0 || wall > limits.MaxWallSeconds) {
		wall = limits.MaxWallSeconds
	}
	if wall > 0 {
		j.wall = time.Duration(wall * float64(time.Second))
	}
	if spec.DeadlineSeconds < 0 {
		return nil, fmt.Errorf("deadline_seconds: must be >= 0, got %g", spec.DeadlineSeconds)
	}
	if spec.DeadlineSeconds > 0 {
		// Anchored at materialization: submission time for new jobs, the
		// restart for recovered ones (the original anchor died with the
		// old process; re-arming the full window is the lenient choice).
		j.deadline = time.Now().Add(time.Duration(spec.DeadlineSeconds * float64(time.Second)))
	}
	if j.Spec.Tenant == "" {
		// Pre-tenancy journals and embedded callers: everything without
		// an owner is the anonymous tenant.
		j.Spec.Tenant = tenant.Anonymous
	}

	// A per-job telemetry layer with an event hook: the solver's stream
	// events (archive_accept, init, restart, decision, ...) feed the
	// job's event buffer and live front mirror. The layer carries no
	// logger or JSONL writer, so instruments stay cheap.
	j.tel = telemetry.New(nil, nil)
	j.tel.SetHook(j.observe)
	cfg.Telemetry = j.tel
	j.cfg = cfg

	// Jobs with deterministic checkpoint barriers accept live instance
	// mutations; the schedule exists from submission so a PATCH can land
	// while the job is still queued. Cluster-share shards are excluded:
	// shared solutions would reference diverging instances.
	every := limits.CheckpointEvery
	if j.resume != nil {
		every = j.resume.Every
	}
	if every > 0 && alg != core.Combined && cfg.MaxSeconds <= 0 && spec.ShareGroup == "" {
		j.dyn = dynamic.NewSchedule()
		j.dyn.Telemetry = j.tel
		j.dyn.OnApplied = j.mutationApplied
	}

	// Every job is traced: the recorder costs nothing until spans are
	// recorded, and the ring grows lazily. A submitted traceparent makes
	// the job's "job" span a child of the caller's span; otherwise the
	// job roots its own trace.
	if spec.Traceparent != "" {
		j.tr = trace.NewFrom(spec.Traceparent, jobTraceRingCap)
	} else {
		j.tr = trace.New(jobTraceRingCap)
	}
	j.rootSpan = j.tr.Start(nil, "job").
		SetAttr("instance", j.instName).
		SetAttr("algorithm", j.alg.String()).
		SetAttr("backend", j.backend).
		SetInt("seed", int64(j.cfg.Seed))
	j.fr = flight.NewRing(0)

	j.ctx, j.cancel = context.WithCancel(context.Background())
	// The solver picks the trace up from the context: core.RunContext
	// starts its "run" span as a child of the job span.
	j.ctx = trace.NewContext(j.ctx, j.tr, j.rootSpan)
	return j, nil
}

// observe is the telemetry event hook. It runs on solver goroutines while
// the job is running, so everything it touches is guarded by j.mu. The
// fields map is freshly allocated per emission by the call sites, so
// retaining it is safe.
func (j *Job) observe(name string, fields map[string]any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch name {
	case "init":
		obj := objFromFields(fields)
		if !j.haveRef {
			// Same reference-point convention as the searcher's own
			// hypervolume telemetry: a box comfortably dominating the
			// construction solution.
			j.hvRef = solution.Objectives{
				Distance:  2*obj.Distance + 1,
				Vehicles:  obj.Vehicles + 1,
				Tardiness: 2*obj.Tardiness + 1,
			}
			j.haveRef = true
		}
		j.insertPointLocked(FrontPoint{
			Distance: obj.Distance, Vehicles: obj.Vehicles, Tardiness: obj.Tardiness,
			Feasible: obj.Feasible(), Proc: fieldInt(fields, "proc"),
		})
	case "archive_accept":
		obj := objFromFields(fields)
		j.insertPointLocked(FrontPoint{
			Distance: obj.Distance, Vehicles: obj.Vehicles, Tardiness: obj.Tardiness,
			Feasible:  obj.Feasible(),
			Proc:      fieldInt(fields, "proc"),
			Iteration: fieldInt(fields, "iteration"),
			Time:      fieldFloat(fields, "time"),
		})
	case "snapshot":
		// Periodic convergence snapshot (Config.SampleEvery grid): feed
		// the flight recorder. Only run-deterministic fields go in, so two
		// same-seed sim recordings are bit-identical (see package flight).
		sm := flight.Sample{
			Evals:       int64(fieldInt(fields, "evals")),
			Iteration:   int64(fieldInt(fields, "iteration")),
			Time:        fieldFloat(fields, "time"),
			ArchiveSize: fieldInt(fields, "archive_size"),
			NondomSize:  fieldInt(fields, "nondom_size"),
			Hypervolume: fieldFloat(fields, "hypervolume"),
			Spacing:     fieldFloat(fields, "spacing"),
		}
		if sm.Time > 0 {
			sm.EvalsPerSec = float64(sm.Evals) / sm.Time
		}
		if ops := j.tel.Operators().Snapshot(); len(ops) > 0 {
			sm.AcceptRates = make(map[string]float64, len(ops))
			for op, st := range ops {
				if r, ok := st["accept_rate"].(float64); ok {
					sm.AcceptRates[op] = r
				}
			}
		}
		// The first sample after a mutation epoch carries its marker.
		// Derived from the run-deterministic mutation log, so identical
		// (seed, mutation log) replays carry identical markers.
		sm.Marker = j.pendingMarker
		j.pendingMarker = ""
		j.fr.Observe(sm)
	}
	j.appendEventLocked(name, fields)
}

// mutationApplied observes one applied mutation epoch (the schedule's
// OnApplied hook, called from the run's process after the splice and
// before the warm restart): it emits a "mutations" event for the SSE
// stream and arms the flight-recorder marker consumed by the next
// snapshot sample.
func (j *Job) mutationApplied(rep dynamic.Report) {
	j.mu.Lock()
	j.pendingMarker = fmt.Sprintf("mutation@%d", rep.Epoch)
	j.appendEventLocked("mutations", map[string]any{
		"job":             j.ID,
		"epoch":           rep.Epoch,
		"applied":         rep.Applied,
		"rejected":        rep.Rejected,
		"orphans":         rep.Orphans,
		"invalidated":     rep.Invalidated,
		"pending_dropped": rep.PendingDropped,
		"splice_seconds":  rep.Seconds,
	})
	j.mu.Unlock()
}

// insertPointLocked merges one accepted point into the live front mirror,
// keeping it mutually non-dominated. Accepted points come from per-process
// archives, so the union needs this global dominance prune.
func (j *Job) insertPointLocked(pt FrontPoint) {
	if j.firstPoint.IsZero() {
		j.firstPoint = time.Now() // submit-to-first-point SLO mark
	}
	obj := pt.objectives()
	kept := j.front[:0]
	for _, q := range j.front {
		qo := q.objectives()
		if qo.WeaklyDominates(obj) {
			return // already covered; drop the newcomer
		}
		if !obj.Dominates(qo) {
			kept = append(kept, q)
		}
	}
	j.front = append(kept, pt)
}

// appendEventLocked appends to the bounded event buffer and wakes every
// stream subscriber by closing and replacing the notify channel.
func (j *Job) appendEventLocked(name string, fields map[string]any) {
	j.lastSeq++
	j.events = append(j.events, Event{Seq: j.lastSeq, TS: time.Now(), Name: name, Fields: fields})
	if len(j.events) > maxEvents {
		drop := len(j.events) - maxEvents
		j.events = append(j.events[:0], j.events[drop:]...)
	}
	if len(j.events) > 0 {
		j.firstSeq = j.events[0].Seq
	}
	close(j.notify)
	j.notify = make(chan struct{})
}

// eventsSince returns a copy of the retained events with Seq > after, a
// channel closed on the next event, the last assigned Seq, and whether the
// job is terminal (no further events will follow those returned).
func (j *Job) eventsSince(after int) (evs []Event, notify <-chan struct{}, lastSeq int, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after < j.firstSeq-1 {
		after = j.firstSeq - 1 // resume window fell off the buffer
	}
	for _, e := range j.events {
		if e.Seq > after {
			evs = append(evs, e)
		}
	}
	return evs, j.notify, j.lastSeq, j.state.Terminal()
}

// Status is the JSON body of GET /v1/jobs/{id}: job identity and state,
// live progress counters, and the current front with its quality metrics.
type Status struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Tenant is the owning tenant and Lane its scheduler lane (today
	// always equal; the split leaves room for sub-tenant lanes), so
	// listings group by tenant without a second endpoint. Priority is
	// the post-clamp lane priority.
	Tenant      string     `json:"tenant,omitempty"`
	Lane        string     `json:"lane,omitempty"`
	Priority    int        `json:"priority,omitempty"`
	Instance    string     `json:"instance"`
	Customers   int        `json:"customers"`
	Algorithm   string     `json:"algorithm"`
	Processors  int        `json:"processors"`
	Backend     string     `json:"backend"`
	Seed        uint64     `json:"seed"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	Error       string     `json:"error,omitempty"`

	// GranularK and EvalWorkers echo the spec-level search knobs that
	// form the human-readable half of the checkpoint fingerprint:
	// GranularK shapes the trajectory and must match on resume,
	// EvalWorkers only shards delta evaluation and may change.
	GranularK   int `json:"granular_k,omitempty"`
	EvalWorkers int `json:"eval_workers,omitempty"`

	// The dynamic-mutation counters: epochs applied so far, mutations
	// applied and rejected across them, mutations still queued, and the
	// last applied epoch. All zero for non-dynamic jobs.
	MutationEpochs    int `json:"mutation_epochs,omitempty"`
	MutationsApplied  int `json:"mutations_applied,omitempty"`
	MutationsRejected int `json:"mutations_rejected,omitempty"`
	MutationsPending  int `json:"mutations_pending,omitempty"`
	LastMutationEpoch int `json:"last_mutation_epoch,omitempty"`

	// Evaluations and Iterations are live telemetry counters while the
	// job runs and final totals afterwards.
	Evaluations int64 `json:"evaluations"`
	Iterations  int64 `json:"iterations"`
	// Elapsed is the backend-reported runtime, available once terminal.
	Elapsed float64 `json:"elapsed_seconds,omitempty"`
	// LastEventSeq is the newest event Seq (the SSE resume cursor).
	LastEventSeq int `json:"last_event_seq"`

	Front []FrontPoint `json:"front,omitempty"`
	// Hypervolume of the feasible members of Front against HVRef, and
	// their Spacing; 0 until the front has feasible members.
	Hypervolume float64              `json:"hypervolume,omitempty"`
	Spacing     float64              `json:"spacing,omitempty"`
	HVRef       *solution.Objectives `json:"hv_ref,omitempty"`
}

// Status snapshots the job. The state copy happens under j.mu but the
// front-quality metrics (hypervolume, spacing) are computed on the
// snapshot after the lock is released: for large fronts they are the
// expensive part, and holding j.mu through them would block the solver's
// observe hook on every status poll.
func (j *Job) Status() Status {
	j.mu.Lock()
	st := Status{
		ID:           j.ID,
		State:        j.state,
		Tenant:       j.Spec.Tenant,
		Lane:         j.Spec.Tenant,
		Priority:     j.Spec.Priority,
		Instance:     j.instName,
		Customers:    j.in.N(),
		Algorithm:    j.alg.String(),
		Processors:   j.cfg.Processors,
		Backend:      j.backend,
		Seed:         j.cfg.Seed,
		GranularK:    j.cfg.GranularK,
		EvalWorkers:  j.cfg.EvalWorkers,
		SubmittedAt:  j.submitted,
		Error:        j.errText,
		LastEventSeq: j.lastSeq,
		Front:        append([]FrontPoint(nil), j.front...),
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.result != nil {
		st.Evaluations = int64(j.result.Evaluations)
		st.Iterations = int64(j.result.Iterations)
		st.Elapsed = j.result.Elapsed
	} else if j.restored != nil {
		// A terminal job recovered from disk: serve the persisted totals.
		st.Evaluations = int64(j.restored.Evaluations)
		st.Elapsed = j.restored.Elapsed
	}
	haveRef, ref := j.haveRef, j.hvRef
	haveResult := j.result != nil || j.restored != nil
	j.mu.Unlock()

	if j.dyn != nil {
		for _, rep := range j.dyn.Reports() {
			st.MutationEpochs++
			st.MutationsApplied += rep.Applied
			st.MutationsRejected += rep.Rejected
			st.LastMutationEpoch = rep.Epoch
		}
		st.MutationsPending = j.dyn.Pending()
	}

	if !haveResult {
		// Live counters are atomics on the immutable per-job telemetry
		// layer; no lock needed.
		search := j.tel.SearchGroup()
		st.Evaluations = search.Evaluations.Load()
		st.Iterations = search.Iterations.Load()
	}
	if haveRef {
		st.HVRef = &ref
		var feas []solution.Objectives
		for _, p := range st.Front {
			if p.Feasible {
				feas = append(feas, p.objectives())
			}
		}
		st.Hypervolume = metrics.Hypervolume(feas, ref)
		st.Spacing = metrics.Spacing(feas)
	}
	return st
}

// Result returns the stored run result, nil before the job is terminal.
// Canceled jobs keep the partial result accumulated before cancellation.
func (j *Job) Result() *core.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// restoredFront returns the persisted result a recovered terminal job
// serves when its in-memory *core.Result was lost with the old process.
func (j *Job) restoredFront() *resultio.FrontFile {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.restored
}

// setCheckpoint stores the newest checkpoint envelope (the sink path).
func (j *Job) setCheckpoint(barrier int, data []byte) {
	j.ckptMu.Lock()
	j.lastCkpt, j.lastBarrier = data, barrier
	j.ckptMu.Unlock()
}

// CheckpointData returns the newest checkpoint envelope and its barrier;
// nil before the first barrier (or for uncheckpointed jobs).
func (j *Job) CheckpointData() ([]byte, int) {
	j.ckptMu.Lock()
	defer j.ckptMu.Unlock()
	return j.lastCkpt, j.lastBarrier
}

// InstanceName returns the resolved instance name.
func (j *Job) InstanceName() string { return j.instName }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// begin moves queued -> running. It returns false when the job was
// canceled while waiting in the queue.
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.queueSpan.End()
	j.appendEventLocked("started", map[string]any{"job": j.ID})
	return true
}

// finish records the run outcome and moves the job to its terminal state:
// failed on error, canceled when the user asked, done otherwise (including
// wall-deadline expiry, which is a budget, not a cancellation).
func (j *Job) finish(res *core.Result, err error) {
	j.mu.Lock()
	state := StateDone
	fields := map[string]any{"job": j.ID}
	switch {
	case err != nil:
		state = StateFailed
		j.errText = err.Error()
		fields["error"] = j.errText
	case j.userCancel:
		state = StateCanceled
	}
	if res != nil {
		j.result = res
		fields["evaluations"] = res.Evaluations
		fields["iterations"] = res.Iterations
		fields["elapsed_seconds"] = res.Elapsed
		fields["front_size"] = len(res.Front)
	}
	j.terminalLocked(state, fields)
	j.mu.Unlock()
}

// terminalLocked performs the one-and-only transition into a terminal
// state: stamps the finish time, emits the lifecycle event, releases the
// job's context, and tells the service the job is finished.
func (j *Job) terminalLocked(state State, fields map[string]any) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.finished = time.Now()
	j.appendEventLocked(string(state), fields)
	j.doneOnce.Do(func() {
		j.cancel()
		// Seal the lifecycle spans: the queue span (idempotent — begin
		// already ended it unless the job was canceled while queued), then
		// the root job span stamped with the terminal state.
		j.queueSpan.End()
		j.rootSpan.SetAttr("state", string(state)).End()
		if j.svc != nil {
			// A job that turned terminal without ever dispatching still
			// occupies its lane slot bookkeeping: pull it out of the
			// scheduler (no-op if a worker already popped it) and settle
			// the recovering gauge. Both are leaf locks under j.mu.
			j.svc.sched.remove(j)
			j.recoveredDispatched()
			if j.Spec.ShareGroup != "" {
				// Seal the share feed. armShares' cleanup does this for
				// jobs that ran, but a share job that turns terminal
				// without ever starting (canceled while queued — a work
				// steal, say) has no cleanup, and an unfinished feed
				// strands sibling subscribers on a silent stream forever.
				j.svc.shares.feed(j.Spec.ShareGroup, j.Spec.ShareShard).finish()
			}
			// Fold this job's final telemetry into the service-wide
			// Prometheus aggregation and record the SLO observations
			// (lock order j.mu -> met.mu).
			start := j.started
			if start.IsZero() {
				start = j.finished // canceled while queued: all wait, no run
			}
			j.svc.met.complete(string(state), j.Spec.Tenant, start.Sub(j.submitted),
				j.finished.Sub(j.submitted), !j.firstPoint.IsZero(), j.firstPoint.Sub(j.submitted))
			j.svc.met.fold(j.ID, j.tel.Samples())
			// Persist before releasing the drain waiter: once jobDone
			// returns, a clean shutdown may proceed, and the result plus
			// its journal record must already be on disk.
			j.svc.persistTerminal(j, state)
			j.svc.exportTrace(j)
			j.svc.jobDone()
		}
	})
}

// recoveredDispatched settles the service's recovering gauge for a
// recovery-requeued job, exactly once: called when a worker first picks
// the job up, and from the terminal path for recovered jobs canceled
// while still queued. Atomic — safe under j.mu.
func (j *Job) recoveredDispatched() {
	if j.svc == nil || !j.recoveredPending {
		return
	}
	j.recoveredOnce.Do(func() { j.svc.recovering.Add(-1) })
}

// Cancel requests cancellation. A queued job turns canceled immediately; a
// running one has its context cancelled and reaches the canceled state
// (with its partial result) within one solver iteration. Terminal jobs are
// unaffected. It returns the job's state after the request.
func (j *Job) Cancel() State {
	j.mu.Lock()
	if j.state == StateQueued {
		j.userCancel = true
		j.terminalLocked(StateCanceled, map[string]any{"job": j.ID, "while": "queued"})
		j.mu.Unlock()
		return StateCanceled
	}
	if j.state == StateRunning {
		j.userCancel = true
		state := j.state
		j.mu.Unlock()
		j.cancel()
		return state
	}
	state := j.state
	j.mu.Unlock()
	return state
}

// objFromFields decodes the objective triple carried by solver events.
func objFromFields(fields map[string]any) solution.Objectives {
	return solution.Objectives{
		Distance:  fieldFloat(fields, "distance"),
		Vehicles:  fieldFloat(fields, "vehicles"),
		Tardiness: fieldFloat(fields, "tardiness"),
	}
}

func fieldFloat(fields map[string]any, key string) float64 {
	switch v := fields[key].(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	return 0
}

func fieldInt(fields map[string]any, key string) int {
	switch v := fields[key].(type) {
	case int:
		return v
	case int64:
		return int(v)
	case float64:
		return int(v)
	}
	return 0
}
