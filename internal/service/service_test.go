package service

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// smallSpec is a job that finishes in well under a second.
func smallSpec() JobSpec {
	return JobSpec{
		Instance:       InstanceSpec{Class: "R1", N: 40, Seed: 3},
		MaxEvaluations: 1500,
		Seed:           7,
	}
}

// longSpec is a job that would run for minutes if never cancelled.
func longSpec() JobSpec {
	s := smallSpec()
	s.MaxEvaluations = 50_000_000
	return s
}

func testService(t *testing.T, cfg Config) *Service {
	t.Helper()
	svc := New(cfg)
	t.Cleanup(svc.Close)
	return svc
}

// waitState polls until the job reaches want.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s stuck in %s; want %s", j.ID, j.State(), want)
}

func TestSubmitValidation(t *testing.T) {
	svc := testService(t, Config{Workers: 1, MaxEvaluations: 10_000, MaxProcessors: 4, MaxCustomers: 100})
	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"no instance", JobSpec{}, "instance"},
		{"both instance forms", JobSpec{Instance: InstanceSpec{Class: "R1", N: 10, Solomon: "x"}}, "mutually exclusive"},
		{"bad class", JobSpec{Instance: InstanceSpec{Class: "Z9", N: 10}}, "Z9"},
		{"bad solomon", JobSpec{Instance: InstanceSpec{Solomon: "not an instance"}}, "instance"},
		{"bad algorithm", func() JobSpec { s := smallSpec(); s.Algorithm = "simulated-annealing"; return s }(), "algorithm"},
		{"bad backend", func() JobSpec { s := smallSpec(); s.Backend = "quantum"; return s }(), "backend"},
		{"evals over limit", func() JobSpec { s := smallSpec(); s.MaxEvaluations = 1_000_000; return s }(), "exceeds"},
		{"procs over limit", func() JobSpec { s := smallSpec(); s.Algorithm = "asynchronous"; s.Processors = 12; return s }(), "exceeds"},
		{"instance over limit", JobSpec{Instance: InstanceSpec{Class: "R1", N: 500, Seed: 1}}, "exceeds"},
	}
	for _, tc := range cases {
		if _, err := svc.Submit(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v; want mention of %q", tc.name, err, tc.want)
		}
	}
}

func TestJobRunsToCompletion(t *testing.T) {
	svc := testService(t, Config{Workers: 1})
	j, err := svc.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	st := j.Status()
	if st.Evaluations < 1500 {
		t.Errorf("done job reports %d evaluations; want >= budget", st.Evaluations)
	}
	if len(st.Front) == 0 {
		t.Error("done job has an empty live front")
	}
	if st.Hypervolume <= 0 {
		t.Errorf("hypervolume = %v; want > 0", st.Hypervolume)
	}
	if res := j.Result(); res == nil || len(res.Front) == 0 {
		t.Error("done job has no stored result")
	}
	evs, _, _, terminal := j.eventsSince(0)
	if !terminal {
		t.Error("done job not marked terminal in its event stream")
	}
	var names []string
	for _, e := range evs {
		names = append(names, e.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"queued", "started", "init", "archive_accept", "done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("event stream %v missing %q", names, want)
		}
	}
}

// TestQueueBackpressure fills a 2-worker, depth-1 service with long jobs
// and expects the 4th submission to bounce with ErrQueueFull.
func TestQueueBackpressure(t *testing.T) {
	svc := testService(t, Config{Workers: 2, QueueDepth: 1, MaxEvaluations: -1})
	// Fill both workers first (waiting for the pickup each time, so the
	// depth-1 queue is empty again), then park a third job in the queue:
	// the 4th submission then overflows deterministically.
	var jobs []*Job
	for i := 0; i < 3; i++ {
		j, err := svc.Submit(longSpec())
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		jobs = append(jobs, j)
		deadline := time.Now().Add(10 * time.Second)
		for i < 2 && svc.Stats().Busy < i+1 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if _, err := svc.Submit(longSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th submission: got %v; want ErrQueueFull", err)
	}
	for _, j := range jobs {
		j.Cancel()
	}
	for _, j := range jobs {
		waitState(t, j, StateCanceled)
	}
}

// TestCancelQueuedJob cancels a job that never left the queue.
func TestCancelQueuedJob(t *testing.T) {
	svc := testService(t, Config{Workers: 1, QueueDepth: 2, MaxEvaluations: -1})
	running, err := svc.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	queued, err := svc.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if state := queued.Cancel(); state != StateCanceled {
		t.Fatalf("cancelling a queued job: state %s; want canceled immediately", state)
	}
	running.Cancel()
	waitState(t, running, StateCanceled)
	if res := running.Result(); res == nil {
		t.Error("canceled running job lost its partial result")
	} else if res.Evaluations == 0 {
		t.Error("canceled running job reports no work")
	}
}

// TestCancelFreesWorker checks the acceptance criterion that DELETE on a
// running job frees its worker promptly: a small job submitted afterwards
// must complete.
func TestCancelFreesWorker(t *testing.T) {
	svc := testService(t, Config{Workers: 1, QueueDepth: 2, MaxEvaluations: -1})
	long, err := svc.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, long, StateRunning)
	small, err := svc.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := svc.Cancel(long.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, long, StateCanceled)
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancellation took %v; want within one iteration", d)
	}
	waitState(t, small, StateDone)
}

func TestDrainFinishesJobs(t *testing.T) {
	svc := New(Config{Workers: 2})
	a, err := svc.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if a.State() != StateDone || b.State() != StateDone {
		t.Fatalf("after drain: %s/%s; want done/done", a.State(), b.State())
	}
	if _, err := svc.Submit(smallSpec()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submission after drain: got %v; want ErrDraining", err)
	}
	if got := svc.Stats().Status; got != "draining" {
		t.Errorf("status = %q; want draining", got)
	}
}

// TestDrainGraceCancelsStragglers drains with an already-expired grace
// context and expects running jobs to be cancelled, keeping their work.
func TestDrainGraceCancelsStragglers(t *testing.T) {
	svc := New(Config{Workers: 1, MaxEvaluations: -1})
	j, err := svc.Submit(longSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if j.State() != StateCanceled {
		t.Fatalf("job state after forced drain: %s; want canceled", j.State())
	}
}

func TestStats(t *testing.T) {
	svc := testService(t, Config{Workers: 2, QueueDepth: 4, Version: "test-1"})
	st := svc.Stats()
	if st.Status != "ok" || st.Workers != 2 || st.QueueCap != 4 || st.Version != "test-1" {
		t.Fatalf("unexpected stats: %+v", st)
	}
	j, err := svc.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	if got := svc.Stats().Jobs[StateDone]; got != 1 {
		t.Errorf("done count = %d; want 1", got)
	}
}

// TestEviction keeps only the newest terminal jobs.
func TestEviction(t *testing.T) {
	svc := testService(t, Config{Workers: 1, RetainJobs: 2, QueueDepth: 8})
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := svc.Submit(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, j, StateDone)
		ids = append(ids, j.ID)
	}
	if _, ok := svc.Job(ids[0]); ok {
		t.Error("oldest terminal job not evicted")
	}
	if _, ok := svc.Job(ids[3]); !ok {
		t.Error("newest job evicted")
	}
	if got := len(svc.Jobs()); got > 3 {
		t.Errorf("retained %d jobs; want <= RetainJobs+1", got)
	}
}
