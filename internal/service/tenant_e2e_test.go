package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/resultio"
	"repro/internal/tenant"
)

// vclock is the virtual clock the admission tests drive token buckets
// with: time moves only when the test says so, making every rate-limit
// verdict and Retry-After hint exact.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVclock() *vclock { return &vclock{t: time.Unix(1_700_000_000, 0)} }

func (c *vclock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *vclock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// postJobAs submits a job with a tenant bearer token ("" = anonymous).
func postJobAs(t *testing.T, base, token string, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// patchInstanceAs is patchInstance with a tenant bearer token.
func patchInstanceAs(t *testing.T, base, token, id string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, base+"/v1/jobs/"+id+"/instance", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestE2EFairShare50To1 is the fairness acceptance test: tenant acme
// (weight 3) floods 150 submissions against beta's 3 (a 50:1 ratio)
// into a single-worker pool. Deficit round robin must keep the
// completed-job split at the 3:1 weight ratio — measured over the first
// 12 completions, while both lanes are backlogged — and beta must
// finish every job it submitted despite the flood. The scheduler reads
// no clock, so the dispatch order is exact, not statistical.
func TestE2EFairShare50To1(t *testing.T) {
	reg := tenant.NewRegistry(newVclock().Now)
	reg.Add(tenant.Policy{Name: "acme", Weight: 3}, "k-acme")
	reg.Add(tenant.Policy{Name: "beta", Weight: 1}, "k-beta")
	_, srv := e2eServer(t, Config{
		Workers: 1, QueueDepth: 300, RetainJobs: 300, MaxEvaluations: -1, Tenants: reg,
	})
	base := srv.URL
	release := blockWorker(t, base)

	spec := JobSpec{
		Instance:       InstanceSpec{Class: "R1", N: 25, Seed: 3},
		MaxEvaluations: 600,
		Seed:           7,
	}
	submit := func(token string, n int) {
		for i := 0; i < n; i++ {
			resp := postJobAs(t, base, token, spec)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("%s submission %d: %s", token, i, resp.Status)
			}
			resp.Body.Close()
		}
	}
	submit("k-beta", 3)
	submit("k-acme", 150)
	release()

	// Wait until at least 12 tenant jobs are terminal, then measure the
	// completed split over the earliest 12 finishers.
	type doneJob struct {
		tenant string
		at     time.Time
	}
	type jobList struct {
		Jobs []Status `json:"jobs"`
	}
	var done []doneJob
	deadline := time.Now().Add(60 * time.Second)
	for {
		lst := decodeBody[jobList](t, mustGet(t, base+"/v1/jobs"))
		done = done[:0]
		for _, st := range lst.Jobs {
			if st.State == StateDone && st.Tenant != tenant.Anonymous && st.FinishedAt != nil {
				done = append(done, doneJob{st.Tenant, *st.FinishedAt})
			}
		}
		if len(done) >= 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d tenant jobs finished", len(done))
		}
		time.Sleep(20 * time.Millisecond)
	}
	sort.Slice(done, func(i, j int) bool { return done[i].at.Before(done[j].at) })
	counts := map[string]int{}
	for _, d := range done[:12] {
		counts[d.tenant]++
	}
	// Exact DRR contract: 3 acme + 1 beta per round, 12 completions = 3
	// full rounds.
	if counts["acme"] != 9 || counts["beta"] != 3 {
		t.Fatalf("first 12 completions split acme=%d beta=%d, want 9/3", counts["acme"], counts["beta"])
	}
	// The acceptance criterion as stated: completed share within 10% of
	// the configured weight share (acme 75%, beta 25%).
	for name, weight := range map[string]float64{"acme": 3, "beta": 1} {
		share := float64(counts[name]) / 12
		want := weight / 4
		if diff := share - want; diff < -0.10 || diff > 0.10 {
			t.Errorf("tenant %s completed share %.2f, want %.2f +/- 0.10", name, share, want)
		}
	}
	// The flooded-out tenant still finished everything it submitted.
	betaDone := 0
	for _, d := range done {
		if d.tenant == "beta" {
			betaDone++
		}
	}
	if betaDone != 3 {
		t.Errorf("beta finished %d of its 3 jobs", betaDone)
	}
}

// TestE2ESubmitRateLimitDeterminism drives the submission token bucket
// on a virtual clock: burst 2 admits exactly two jobs, the third is
// refused with 429 and the precise Retry-After, and advancing the clock
// by exactly one refill interval admits one more. No sleeps, no jitter.
func TestE2ESubmitRateLimitDeterminism(t *testing.T) {
	ck := newVclock()
	reg := tenant.NewRegistry(ck.Now)
	reg.Add(tenant.Policy{Name: "acme", SubmitRate: 1, SubmitBurst: 2}, "k-acme")
	_, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 8, MaxEvaluations: -1, Tenants: reg})
	base := srv.URL

	for i := 0; i < 2; i++ {
		resp := postJobAs(t, base, "k-acme", smallSpec())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submission %d: %s", i, resp.Status)
		}
		resp.Body.Close()
	}
	resp := postJobAs(t, base, "k-acme", smallSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst submission: %s, want 429", resp.Status)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After %q, want \"1\" (empty bucket at rate 1/s)", ra)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "rate limit") {
		t.Errorf("429 body does not name the rate limit: %s", body)
	}

	// The verdict is stable while the clock is frozen...
	resp = postJobAs(t, base, "k-acme", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("repeat over-burst submission: %s, want 429", resp.Status)
	}
	// ...and one refill interval buys exactly one token.
	ck.Advance(time.Second)
	resp = postJobAs(t, base, "k-acme", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-refill submission: %s, want 202", resp.Status)
	}
	resp = postJobAs(t, base, "k-acme", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second post-refill submission: %s, want 429 (one token, not two)", resp.Status)
	}

	// Anonymous submissions are not rate limited — the back-compat path.
	resp = postJobAs(t, base, "", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("anonymous submission under acme's limit: %s, want 202", resp.Status)
	}
}

// TestE2EAuthRejectionTable pins the credential-resolution contract:
// every way of presenting (or mangling) a key, against both a write and
// a read endpoint.
func TestE2EAuthRejectionTable(t *testing.T) {
	reg := tenant.NewRegistry(nil)
	reg.Add(tenant.Policy{Name: "acme"}, "k-acme")
	_, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 8, MaxEvaluations: -1, Tenants: reg})
	base := srv.URL

	cases := []struct {
		name       string
		header     string
		wantStatus int
		wantTenant string
	}{
		{"no credentials", "", http.StatusAccepted, "anonymous"},
		{"bearer key", "Bearer k-acme", http.StatusAccepted, "acme"},
		{"case-insensitive scheme", "bEaReR k-acme", http.StatusAccepted, "acme"},
		{"bare token", "k-acme", http.StatusAccepted, "acme"},
		{"padded token", "Bearer   k-acme  ", http.StatusAccepted, "acme"},
		{"unknown key", "Bearer nope", http.StatusUnauthorized, ""},
		{"unknown bare token", "nope", http.StatusUnauthorized, ""},
		{"empty bearer", "Bearer  ", http.StatusUnauthorized, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body, _ := json.Marshal(smallSpec())
			req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			if tc.header != "" {
				req.Header.Set("Authorization", tc.header)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("submit with %q: %s, want %d", tc.header, resp.Status, tc.wantStatus)
			}
			if tc.wantStatus != http.StatusAccepted {
				resp.Body.Close()
				// Reads are gated by the same middleware.
				greq, _ := http.NewRequest(http.MethodGet, base+"/v1/jobs", nil)
				greq.Header.Set("Authorization", tc.header)
				gresp, err := http.DefaultClient.Do(greq)
				if err != nil {
					t.Fatal(err)
				}
				gresp.Body.Close()
				if gresp.StatusCode != http.StatusUnauthorized {
					t.Errorf("list with %q: %s, want 401", tc.header, gresp.Status)
				}
				return
			}
			sub := decodeBody[SubmitResponse](t, resp)
			if st := getStatus(t, base, sub.ID); st.Tenant != tc.wantTenant {
				t.Errorf("job tenant %q, want %q", st.Tenant, tc.wantTenant)
			}
		})
	}
}

// TestE2EMutationStormChaos is the mutation-storm acceptance test: a
// flooding tenant hammers PATCH /instance past its token bucket and
// collects 429s, while a co-tenant's dynamic job accepts its one batch,
// applies it on schedule, and produces a front bit-identical to an
// isolated reference run — the storm never touches a barrier it wasn't
// admitted to.
func TestE2EMutationStormChaos(t *testing.T) {
	spec := smallSpec()
	spec.MaxEvaluations = 60_000
	batch := MutateRequest{
		Epoch: 2,
		Mutations: []dynamic.Mutation{
			cancelMut(5),
			{Version: dynamic.Version, Op: dynamic.UpdateDemand, Customer: 3, Demand: 5},
		},
	}

	// Isolated reference: the same spec and batch on a quiet service.
	ref := func() *resultio.FrontFile {
		_, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 8, MaxEvaluations: -1, CheckpointEvery: 3})
		base := srv.URL
		release := blockWorker(t, base)
		resp := postJob(t, base, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("reference submit: %s", resp.Status)
		}
		id := decodeBody[SubmitResponse](t, resp).ID
		resp = patchInstance(t, base, id, batch)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference PATCH: %s", resp.Status)
		}
		release()
		waitHTTPState(t, base, id, StateDone)
		ff := decodeBody[resultio.FrontFile](t, mustGet(t, base+"/v1/jobs/"+id+"/result"))
		return &ff
	}()

	// Storm run: tenant flood's mutate bucket holds 2 tokens and never
	// refills (frozen clock); tenant calm is unlimited.
	ck := newVclock()
	reg := tenant.NewRegistry(ck.Now)
	reg.Add(tenant.Policy{Name: "calm"}, "k-calm")
	reg.Add(tenant.Policy{Name: "flood", MutateRate: 1, MutateBurst: 2}, "k-flood")
	_, srv := e2eServer(t, Config{
		Workers: 1, QueueDepth: 8, MaxEvaluations: -1, CheckpointEvery: 3, Tenants: reg,
	})
	base := srv.URL
	release := blockWorker(t, base)

	resp := postJobAs(t, base, "k-calm", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("calm submit: %s", resp.Status)
	}
	calmID := decodeBody[SubmitResponse](t, resp).ID
	resp = postJobAs(t, base, "k-flood", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("flood submit: %s", resp.Status)
	}
	floodID := decodeBody[SubmitResponse](t, resp).ID

	// The calm tenant's batch is admitted.
	resp = patchInstanceAs(t, base, "k-calm", calmID, batch)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("calm PATCH: %s", resp.Status)
	}

	// The storm: burst 2 admits two batches, every one after that is
	// shed with 429 + Retry-After before touching the journal or a
	// barrier. The frozen clock makes the split exact.
	var shed int
	for i := 0; i < 8; i++ {
		storm := MutateRequest{Mutations: []dynamic.Mutation{cancelMut(7 + i)}}
		resp := patchInstanceAs(t, base, "k-flood", floodID, storm)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case i < 2 && resp.StatusCode != http.StatusOK:
			t.Fatalf("flood PATCH %d (within burst): %s (%s)", i, resp.Status, body)
		case i >= 2 && resp.StatusCode != http.StatusTooManyRequests:
			t.Fatalf("flood PATCH %d (over burst): %s, want 429 (%s)", i, resp.Status, body)
		case i >= 2:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Errorf("flood 429 %d missing Retry-After", i)
			}
			if !strings.Contains(string(body), "rate limit") {
				t.Errorf("flood 429 %d does not name the rate limit: %s", i, body)
			}
		}
	}
	if shed != 6 {
		t.Fatalf("storm shed %d batches, want 6", shed)
	}

	release()
	waitHTTPState(t, base, calmID, StateDone)

	// The co-tenant applied its batch on schedule...
	st := getStatus(t, base, calmID)
	if st.MutationEpochs != 1 || st.MutationsApplied != 2 {
		t.Fatalf("calm mutation epochs=%d applied=%d, want 1/2", st.MutationEpochs, st.MutationsApplied)
	}
	// ...and its front is bit-identical to the isolated reference.
	got := decodeBody[resultio.FrontFile](t, mustGet(t, base+"/v1/jobs/"+calmID+"/result"))
	if got.Evaluations != ref.Evaluations {
		t.Errorf("evaluations: storm %d, reference %d", got.Evaluations, ref.Evaluations)
	}
	if !reflect.DeepEqual(got.Solutions, ref.Solutions) {
		t.Error("co-tenant front diverged from the isolated reference under the mutation storm")
	}

	// The per-tenant series document the storm.
	mresp := mustGet(t, base+"/metrics")
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`tsmod_tenant_submitted_total{tenant="calm"} 1`,
		`tsmod_tenant_submitted_total{tenant="flood"} 1`,
		`tsmod_tenant_rejected_total{tenant="flood"} 6`,
		`tsmod_tenant_queue_wait_seconds_bucket{tenant="calm"`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestE2EReadyzAndShed covers the liveness/readiness split: /v1/healthz
// stays 200 through a shed window (the process is alive) while
// /v1/readyz flips to 503 with the reason, submissions bounce with 503
// + Retry-After, running jobs are untouched, and clearing the shed
// restores readiness.
func TestE2EReadyzAndShed(t *testing.T) {
	svc, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 8, MaxEvaluations: -1})
	base := srv.URL
	release := blockWorker(t, base)
	defer release()

	ready := decodeBody[ReadyResponse](t, mustGet(t, base+"/v1/readyz"))
	if !ready.Ready || len(ready.Reasons) != 0 {
		t.Fatalf("fresh service not ready: %+v", ready)
	}

	svc.SetShed(true)
	resp := mustGet(t, base+"/v1/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while shedding: %s, want 200 (liveness is not readiness)", resp.Status)
	}
	resp = mustGet(t, base+"/v1/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while shedding: %s, want 503", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("not-ready readyz missing Retry-After")
	}
	ready = decodeBody[ReadyResponse](t, resp)
	if ready.Ready || len(ready.Reasons) != 1 || ready.Reasons[0] != "load_shed" {
		t.Fatalf("shedding readyz: %+v, want reasons [load_shed]", ready)
	}
	// The kubelet-style alias serves the same verdict.
	resp = mustGet(t, base+"/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz alias while shedding: %s, want 503", resp.Status)
	}

	// New work bounces; the running job is untouched.
	resp = postJob(t, base, smallSpec())
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while shedding: %s, want 503", resp.Status)
	}
	if !strings.Contains(string(body), "shedding") {
		t.Errorf("shed refusal does not say so: %s", body)
	}

	svc.SetShed(false)
	ready = decodeBody[ReadyResponse](t, mustGet(t, base+"/v1/readyz"))
	if !ready.Ready {
		t.Fatalf("readyz after clearing shed: %+v", ready)
	}
	resp = postJob(t, base, smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after clearing shed: %s, want 202", resp.Status)
	}
}

// TestE2EDeadlineShed: a queued job whose client deadline expires
// before a worker reaches it is shed unstarted — failed with an error
// naming the deadline — instead of burning a worker on a result the
// client stopped waiting for.
func TestE2EDeadlineShed(t *testing.T) {
	_, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 8, MaxEvaluations: -1})
	base := srv.URL
	release := blockWorker(t, base)

	spec := smallSpec()
	spec.DeadlineSeconds = 0.05
	resp := postJob(t, base, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	id := decodeBody[SubmitResponse](t, resp).ID

	time.Sleep(100 * time.Millisecond) // let the deadline lapse while queued
	release()
	st := waitHTTPState(t, base, id, StateFailed)
	if !strings.Contains(st.Error, "shed unstarted") {
		t.Errorf("deadline shed error: %q", st.Error)
	}
}

// TestE2ETenantsEndpoint: /v1/tenants reports every configured tenant
// with its policy, lane occupancy and counters.
func TestE2ETenantsEndpoint(t *testing.T) {
	reg := tenant.NewRegistry(nil)
	reg.Add(tenant.Policy{Name: "acme", Weight: 3, MaxQueued: 5}, "k-acme")
	_, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 8, MaxEvaluations: -1, Tenants: reg})
	base := srv.URL
	release := blockWorker(t, base)
	defer release()

	resp := postJobAs(t, base, "k-acme", smallSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	resp.Body.Close()

	rep := decodeBody[struct {
		Tenants map[string]TenantStatus `json:"tenants"`
	}](t, mustGet(t, base+"/v1/tenants"))
	acme, ok := rep.Tenants["acme"]
	if !ok {
		t.Fatalf("tenants report missing acme: %v", rep.Tenants)
	}
	if acme.Policy.Weight != 3 || acme.Policy.MaxQueued != 5 {
		t.Errorf("acme policy %+v, want weight 3, max_queued 5", acme.Policy)
	}
	if acme.Submitted != 1 || acme.Lane.Queued != 1 {
		t.Errorf("acme submitted=%d queued=%d, want 1/1", acme.Submitted, acme.Lane.Queued)
	}
	if _, ok := rep.Tenants[tenant.Anonymous]; !ok {
		t.Error("tenants report missing the anonymous tenant")
	}
}

// TestE2ETenantQuotas: MaxQueued rejects the overflow submission with
// 429 while other tenants still have room, and MaxConcurrent holds a
// tenant's second job queued while a free worker serves other lanes.
func TestE2ETenantQuotas(t *testing.T) {
	reg := tenant.NewRegistry(nil)
	reg.Add(tenant.Policy{Name: "boxed", MaxQueued: 2}, "k-boxed")
	reg.Add(tenant.Policy{Name: "roomy"}, "k-roomy")
	_, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 16, MaxEvaluations: -1, Tenants: reg})
	base := srv.URL
	release := blockWorker(t, base)
	defer release()

	for i := 0; i < 2; i++ {
		resp := postJobAs(t, base, "k-boxed", smallSpec())
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("boxed submission %d: %s", i, resp.Status)
		}
		resp.Body.Close()
	}
	resp := postJobAs(t, base, "k-boxed", smallSpec())
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("boxed overflow: %s, want 429", resp.Status)
	}
	if !strings.Contains(string(body), "tenant queue quota") {
		t.Errorf("overflow error does not name the tenant quota: %s", body)
	}
	// The global queue still has room for everyone else.
	resp = postJobAs(t, base, "k-roomy", smallSpec())
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("roomy submission beside a full boxed lane: %s, want 202", resp.Status)
	}
}
