package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/dynamic"
	"repro/internal/flight"
	"repro/internal/resultio"
	"repro/internal/telemetry"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// maxBodyBytes bounds a submission body; inline Solomon text for the
// largest admissible instances fits comfortably.
const maxBodyBytes = 8 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a job (202; 429 full, 503 draining)
//	GET    /v1/jobs             list retained jobs
//	GET    /v1/jobs/{id}        status + live front + quality metrics
//	GET    /v1/jobs/{id}/events SSE stream of job events (Last-Event-ID resume)
//	GET    /v1/jobs/{id}/result final front as a resultio.FrontFile (409 early)
//	PATCH  /v1/jobs/{id}/instance mutate the live instance (409 terminal/static)
//	DELETE /v1/jobs/{id}        cancel
//	GET    /v1/jobs/{id}/flight flight recording (periodic convergence samples)
//	GET    /v1/jobs/{id}/trace  recorded spans as OTLP/JSON
//	GET    /v1/healthz          liveness: process health, version, occupancy
//	GET    /v1/readyz           readiness: 503 while draining/recovering/shedding
//	GET    /v1/tenants          per-tenant policies, lane occupancy, counters
//	GET    /metrics             Prometheus text-format exposition
//	GET    /telemetry           per-job instrument snapshots
//	/debug/pprof/*, /debug/vars from internal/telemetry
//
// Requests carrying an Authorization header are resolved to their tenant
// before routing; an unknown bearer token is refused with 401 everywhere.
// Requests without credentials are the anonymous tenant.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("PATCH /v1/jobs/{id}/instance", s.handleMutate)
	mux.HandleFunc("GET /v1/jobs/{id}/flight", s.handleFlight)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /v1/shares/{group}/{shard}", s.handleShares)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("GET /readyz", s.handleReadyz) // kubelet-style alias
	mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /telemetry", s.handleTelemetry)
	telemetry.RegisterDebug(mux)
	return s.withTenant(mux)
}

// tenantKey carries the resolved tenant name in the request context.
type tenantKey struct{}

// withTenant resolves the Authorization header to a tenant once per
// request, before routing. Unknown credentials are refused here so no
// handler ever sees them; absent credentials resolve to the anonymous
// tenant, keeping every pre-multi-tenant client working unchanged.
func (s *Service) withTenant(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tn, err := s.cfg.Tenants.Resolve(r.Header.Get("Authorization"))
		if err != nil {
			s.met.reject("unauthorized")
			writeError(w, http.StatusUnauthorized, err)
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tn)))
	})
}

// tenantFrom reads the tenant the middleware resolved; anonymous when
// the handler is exercised without it (direct embedder tests).
func tenantFrom(ctx context.Context) string {
	if tn, ok := ctx.Value(tenantKey{}).(string); ok {
		return tn
	}
	return tenant.Anonymous
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// SubmitResponse is the 202 body of POST /v1/jobs.
type SubmitResponse struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	StatusURL string `json:"status_url"`
	EventsURL string `json:"events_url"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	accepted := time.Now()
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job spec: %w", err))
		return
	}
	// W3C trace context: the request header wins over a body field, so
	// proxies that inject traceparent headers correlate transparently.
	if tp := r.Header.Get("traceparent"); tp != "" {
		spec.Traceparent = tp
	}
	j, err := s.SubmitAs(tenantFrom(r.Context()), spec)
	if err != nil {
		if s.writeAdmissionError(w, err) {
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The accept span covers decode+validate+enqueue, backdated to
	// handler entry; the response echoes the job's traceparent so callers
	// without their own trace can still fetch and correlate the export.
	j.tr.StartAt(j.rootSpan, "accept", accepted).End()
	w.Header().Set("traceparent", j.tr.Traceparent(j.rootSpan))
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID:        j.ID,
		State:     j.State(),
		StatusURL: "/v1/jobs/" + j.ID,
		EventsURL: "/v1/jobs/" + j.ID + "/events",
	})
}

// retryAfterSeconds renders a Retry-After header value, at least 1 second
// (the header has whole-second granularity).
func retryAfterSeconds(d time.Duration) string {
	secs := int(d.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeAdmissionError maps the shared admission failure modes — quota
// refusals to 429, unavailability to 503, storage to 500, all
// backpressure responses carrying Retry-After (a QuotaError's exact
// bucket hint when present, the configured default otherwise). Reports
// false for errors it does not own (the caller maps those).
func (s *Service) writeAdmissionError(w http.ResponseWriter, err error) bool {
	retry := s.cfg.RetryAfter
	var qe *QuotaError
	if errors.As(err, &qe) && qe.After > 0 {
		retry = qe.After
	}
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQueueFull),
		errors.Is(err, ErrRateLimited), errors.Is(err, ErrMutationBudget):
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining), errors.Is(err, ErrLoadShed):
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrStorage):
		writeError(w, http.StatusInternalServerError, err)
	default:
		return false
	}
	return true
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		st := j.Status()
		st.Front = nil // keep the listing small; fronts live on the job URL
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Service) lookup(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrNotFound)
	}
	return j, ok
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	s.Cancel(j.ID) //nolint:errcheck // lookup already succeeded
	writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "state": j.State()})
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !j.State().Terminal() {
		// The job will finish; Retry-After tells polling clients (tsmoctl
		// submit -wait, the cluster coordinator) when to ask again.
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s; the result is available once it is terminal", j.ID, j.State()))
		return
	}
	res := j.Result()
	if res == nil {
		// A job recovered after a restart serves its persisted result:
		// the in-memory *core.Result died with the old process, but the
		// front file survived in the data directory.
		if ff := j.restoredFront(); ff != nil {
			writeJSON(w, http.StatusOK, ff)
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s produced no result", j.ID))
		return
	}
	writeJSON(w, http.StatusOK, resultio.FromResult(j.InstanceName(), res, true))
}

// MutateRequest is the body of PATCH /v1/jobs/{id}/instance: either one
// mutation inline (the dynamic.Mutation fields at the top level) or a
// batch in Mutations. Epoch pins the batch to an explicit checkpoint
// barrier — timed replay scripts use it to make a scenario
// reproducible; 0 lets the service pick the next barrier the run has
// not yet reached. A missing version defaults to the current one.
type MutateRequest struct {
	dynamic.Mutation
	Epoch     int                `json:"epoch,omitempty"`
	Mutations []dynamic.Mutation `json:"mutations,omitempty"`
}

// MutateResponse is the 200 body of PATCH /v1/jobs/{id}/instance.
type MutateResponse struct {
	ID string `json:"id"`
	// Epoch is the checkpoint barrier the batch was pinned to; the run
	// halts there, splices, and warm-restarts.
	Epoch     int `json:"epoch"`
	Mutations int `json:"mutations"`
}

func (s *Service) handleMutate(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req MutateRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding mutation request: %w", err))
		return
	}
	muts := req.Mutations
	if req.Mutation.Op != "" {
		if len(muts) > 0 {
			writeError(w, http.StatusBadRequest, errors.New("provide either one inline mutation or a mutations batch, not both"))
			return
		}
		muts = []dynamic.Mutation{req.Mutation}
	}
	if len(muts) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty mutation batch"))
		return
	}
	for i := range muts {
		if muts[i].Version == 0 {
			muts[i].Version = dynamic.Version
		}
	}
	epoch, err := s.MutateAs(tenantFrom(r.Context()), j.ID, req.Epoch, muts)
	switch {
	case errors.Is(err, ErrTerminal), errors.Is(err, ErrNotDynamic):
		writeError(w, http.StatusConflict, err)
		return
	case errors.Is(err, dynamic.ErrEpochPassed):
		writeError(w, http.StatusConflict, err)
		return
	case err != nil:
		if s.writeAdmissionError(w, err) {
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{ID: j.ID, Epoch: epoch, Mutations: len(muts)})
}

// handleHealthz is liveness: the process is up and answering. It always
// returns 200 — a draining or shedding daemon is alive. Routing
// decisions belong on /v1/readyz.
func (s *Service) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// ReadyResponse is the body of GET /v1/readyz.
type ReadyResponse struct {
	Ready bool `json:"ready"`
	// Reasons lists why the service refuses new work: "draining",
	// "recovering", "load_shed". Empty when ready.
	Reasons []string `json:"reasons,omitempty"`
}

// handleReadyz is readiness: 200 while the service accepts new work,
// 503 (with the reasons) while it is draining, recovering requeued
// jobs, or shedding load. Load balancers route on this; liveness stays
// on /v1/healthz.
func (s *Service) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready, reasons := s.Ready()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	}
	writeJSON(w, status, ReadyResponse{Ready: ready, Reasons: reasons})
}

// TenantStatus is one tenant's row in GET /v1/tenants: its policy, lane
// occupancy, and lifetime admission counters.
type TenantStatus struct {
	Policy    tenant.Policy `json:"policy"`
	Lane      LaneStat      `json:"lane"`
	Submitted int64         `json:"submitted"`
	Rejected  int64         `json:"rejected"`
}

// Tenants reports every configured tenant plus any tenant that still
// holds a lane (a recovered job of a since-deleted tenant).
func (s *Service) Tenants() map[string]TenantStatus {
	lanes := s.sched.stats()
	out := make(map[string]TenantStatus)
	for _, name := range s.cfg.Tenants.Names() {
		out[name] = TenantStatus{Policy: s.cfg.Tenants.Policy(name)}
	}
	for name, ls := range lanes {
		ts, ok := out[name]
		if !ok {
			ts.Policy = s.cfg.Tenants.Policy(name)
		}
		ts.Lane = ls
		out[name] = ts
	}
	s.met.mu.Lock()
	for name, n := range s.met.tenantSubmitted {
		ts, ok := out[name]
		if !ok {
			ts.Policy = s.cfg.Tenants.Policy(name)
		}
		ts.Submitted = n
		out[name] = ts
	}
	for name, n := range s.met.tenantRejected {
		ts, ok := out[name]
		if !ok {
			ts.Policy = s.cfg.Tenants.Policy(name)
		}
		ts.Rejected = n
		out[name] = ts
	}
	s.met.mu.Unlock()
	return out
}

func (s *Service) handleTenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tenants": s.Tenants()})
}

// handleTelemetry reports the live instrument snapshot of every retained
// job, keyed by job id — the service-side equivalent of the single-run
// /telemetry endpoint in internal/telemetry.
func (s *Service) handleTelemetry(w http.ResponseWriter, _ *http.Request) {
	jobs := make(map[string]any)
	for _, j := range s.Jobs() {
		jobs[j.ID] = j.tel.Snapshot()
	}
	writeJSON(w, http.StatusOK, map[string]any{"service": s.Stats(), "jobs": jobs})
}

// handleMetrics serves the Prometheus text-format exposition. The
// retained-job list is captured under s.mu (inside Jobs/Stats) before the
// metrics lock is taken, preserving the service's lock order.
func (s *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.met.writeMetrics(w, st, jobs); err != nil {
		return // client gone mid-scrape
	}
}

// handleFlight serves a job's flight recording: the identity plus every
// retained convergence sample, queryable while the job runs and after it
// is terminal. This is the cmd/tsmo-compare input format.
func (s *Service) handleFlight(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	samples, dropped := j.fr.Snapshot()
	writeJSON(w, http.StatusOK, flight.Recording{
		Job:         j.ID,
		Instance:    j.instName,
		Algorithm:   j.alg.String(),
		Seed:        int64(j.cfg.Seed),
		SampleEvery: j.cfg.SampleEvery,
		Dropped:     dropped,
		Samples:     samples,
	})
}

// handleTrace serves the job's recorded spans as OTLP/JSON — the same
// payload a collector would receive, fetchable ad hoc for debugging a
// single job.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	data, err := trace.Export("tsmod", j.tr)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data) //nolint:errcheck // client gone
}

// handleCheckpoint serves the job's latest checkpoint envelope — the
// migration artifact the cluster coordinator caches so it can restart the
// job on a surviving node after this one dies. 404 until the first barrier
// lands (or forever, for a job that does not checkpoint).
func (s *Service) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	data, barrier := j.CheckpointData()
	if data == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s has no checkpoint yet", j.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Checkpoint-Barrier", strconv.Itoa(barrier))
	w.Write(data) //nolint:errcheck // client gone
}

// handleShares streams one shard's outbound share batches as Server-Sent
// Events. Each batch carries its feed index as the SSE id, so a sibling
// that reconnects — directly or through the coordinator's proxy after a
// migration — resumes with Last-Event-ID (or the after query parameter)
// and misses nothing. A final `done` event announces that the shard will
// publish no further epochs. The feed is created on first touch: a sibling
// may subscribe before the local job has begun publishing.
func (s *Service) handleShares(w http.ResponseWriter, r *http.Request) {
	group := r.PathValue("group")
	shard, err := strconv.Atoi(r.PathValue("shard"))
	if group == "" || err != nil || shard < 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed share address %q/%q", group, r.PathValue("shard")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer does not support streaming"))
		return
	}
	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.Atoi(v) //nolint:errcheck // malformed id restarts the stream
	} else if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.Atoi(v) //nolint:errcheck // as above
	}
	feed := s.shares.feed(group, shard)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		batches, notify, total, done := feed.since(after)
		for i, b := range batches {
			data, err := json.Marshal(b)
			if err != nil {
				continue
			}
			idx := after + i + 1 // 1-based: id N means "N batches delivered"
			if _, err := fmt.Fprintf(w, "id: %d\nevent: share\ndata: %s\n\n", idx, data); err != nil {
				return
			}
		}
		after += len(batches)
		if len(batches) > 0 {
			flusher.Flush()
		}
		if done && after >= total {
			fmt.Fprint(w, "event: done\ndata: {}\n\n") //nolint:errcheck // client gone
			flusher.Flush()
			return
		}
		select {
		case <-notify:
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		}
	}
}

// sseHeartbeat is how often an idle event stream emits a keep-alive
// comment; variable so tests can shrink it.
var sseHeartbeat = 15 * time.Second

// handleEvents streams the job's events as Server-Sent Events. Each event
// carries its Seq as the SSE id, so a dropped client resumes by replaying
// with Last-Event-ID (or the after query parameter). The stream ends once
// the job is terminal and all buffered events have been delivered.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(w, r)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer does not support streaming"))
		return
	}
	after := 0
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		after, _ = strconv.Atoi(v) //nolint:errcheck // malformed id restarts the stream
	} else if v := r.URL.Query().Get("after"); v != "" {
		after, _ = strconv.Atoi(v) //nolint:errcheck // as above
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		evs, notify, lastSeq, terminal := j.eventsSince(after)
		for _, e := range evs {
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Name, data); err != nil {
				return
			}
			after = e.Seq
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if terminal && after >= lastSeq {
			return
		}
		select {
		case <-notify:
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		}
	}
}
