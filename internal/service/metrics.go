package service

import (
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// svcMetrics backs the service's Prometheus endpoint: submission and
// completion counters, the per-job SLO histograms, and the aggregation of
// solver telemetry across jobs. Every exposed series is monotone by
// construction between scrapes — the lint gate in scripts/metricslint
// depends on it:
//
//   - The lifecycle counters and SLO histograms only ever increment.
//   - Solver counters (tsmo_*) are the sum of a retired ledger plus the
//     live counters of running jobs. A job's final counter values are
//     folded into the ledger exactly once as it turns terminal (inside the
//     job's doneOnce), and folded jobs are skipped by the live sum, so a
//     series can never go backwards when a job finishes or is evicted —
//     eviction only forgets the folded marker, never the ledger.
//
// Lock order: j.mu or s.mu may be held when taking met.mu, never the
// reverse — svcMetrics calls out to nothing.
type svcMetrics struct {
	mu        sync.Mutex
	submitted int64
	rejected  map[string]int64 // reason -> submissions refused
	completed map[string]int64 // terminal state -> jobs
	retired   map[string]telemetry.Sample
	folded    map[string]bool // job IDs whose telemetry is in retired

	// Per-tenant admission counters and SLO histograms, keyed by
	// tenant. The histograms are created on a tenant's first
	// observation and never removed, so every exposed series is
	// monotone across scrapes like the rest.
	tenantSubmitted  map[string]int64
	tenantRejected   map[string]int64
	tenantQueueWait  map[string]*telemetry.Histogram
	tenantFirstPoint map[string]*telemetry.Histogram

	// The SLO histograms, in nanoseconds (exposed in seconds):
	// submit->start, submit->first front point, submit->terminal.
	queueWait  telemetry.Histogram
	firstPoint telemetry.Histogram
	duration   telemetry.Histogram
}

func newSvcMetrics() *svcMetrics {
	return &svcMetrics{
		rejected:         make(map[string]int64),
		completed:        make(map[string]int64),
		retired:          make(map[string]telemetry.Sample),
		folded:           make(map[string]bool),
		tenantSubmitted:  make(map[string]int64),
		tenantRejected:   make(map[string]int64),
		tenantQueueWait:  make(map[string]*telemetry.Histogram),
		tenantFirstPoint: make(map[string]*telemetry.Histogram),
	}
}

// submitTenant counts one accepted submission, globally and for the
// tenant.
func (m *svcMetrics) submitTenant(tn string) {
	m.mu.Lock()
	m.submitted++
	m.tenantSubmitted[tn]++
	m.mu.Unlock()
}

func (m *svcMetrics) reject(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

// rejectTenant counts one quota/admission refusal: globally by reason,
// and per tenant (the tenant series aggregates across reasons — the
// exposition keeps one label per series).
func (m *svcMetrics) rejectTenant(tn, reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.tenantRejected[tn]++
	m.mu.Unlock()
}

func (m *svcMetrics) complete(state, tn string, queued, total time.Duration, sawPoint bool, firstPoint time.Duration) {
	m.mu.Lock()
	m.completed[state]++
	qw := m.tenantQueueWait[tn]
	if qw == nil {
		qw = &telemetry.Histogram{}
		m.tenantQueueWait[tn] = qw
	}
	fp := m.tenantFirstPoint[tn]
	if fp == nil {
		fp = &telemetry.Histogram{}
		m.tenantFirstPoint[tn] = fp
	}
	m.mu.Unlock()
	m.queueWait.ObserveDuration(queued)
	m.duration.ObserveDuration(total)
	qw.ObserveDuration(queued)
	if sawPoint {
		m.firstPoint.ObserveDuration(firstPoint)
		fp.ObserveDuration(firstPoint)
	}
}

// fold moves a terminal job's final telemetry into the retired ledger.
// Called exactly once per job (the job's doneOnce).
func (m *svcMetrics) fold(jobID string, samples []telemetry.Sample) {
	m.mu.Lock()
	for _, s := range samples {
		k := s.Key()
		r := m.retired[k]
		r.Name, r.LabelKey, r.LabelValue = s.Name, s.LabelKey, s.LabelValue
		r.V += s.V
		m.retired[k] = r
	}
	m.folded[jobID] = true
	m.mu.Unlock()
}

// forget drops an evicted job's folded marker. Its retired sums stay.
func (m *svcMetrics) forget(jobID string) {
	m.mu.Lock()
	delete(m.folded, jobID)
	m.mu.Unlock()
}

// writeMetrics renders the full Prometheus text-format exposition:
// build info, queue/pool gauges, lifecycle counters, SLO histograms, and
// the cross-job tsmo_* solver counters. jobs is the retained-job list,
// captured under s.mu by the caller before met.mu is taken here.
func (m *svcMetrics) writeMetrics(w io.Writer, st Stats, jobs []*Job) error {
	version := st.Version
	if version == "" {
		version = "unknown"
	}
	if err := telemetry.WritePromGauge(w, "tsmod_build_info",
		"Build metadata; the value is always 1.",
		[][2]string{{"version", version}}, 1); err != nil {
		return err
	}
	gauges := []struct {
		name, help string
		v          float64
	}{
		{"tsmod_workers", "Configured worker-pool size.", float64(st.Workers)},
		{"tsmod_busy_workers", "Workers currently running a job.", float64(st.Busy)},
		{"tsmod_queue_len", "Jobs waiting in the bounded queue.", float64(st.QueueLen)},
		{"tsmod_queue_cap", "Capacity of the bounded queue.", float64(st.QueueCap)},
	}
	for _, g := range gauges {
		if err := telemetry.WritePromGauge(w, g.name, g.help, nil, g.v); err != nil {
			return err
		}
	}

	// Per-lane occupancy gauges, one series per tenant.
	tenants := make([]string, 0, len(st.Tenants))
	for tn := range st.Tenants {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	queuedRows := make([]telemetry.GaugeRow, 0, len(tenants))
	runningRows := make([]telemetry.GaugeRow, 0, len(tenants))
	weightRows := make([]telemetry.GaugeRow, 0, len(tenants))
	for _, tn := range tenants {
		ls := st.Tenants[tn]
		label := [][2]string{{"tenant", tn}}
		queuedRows = append(queuedRows, telemetry.GaugeRow{Labels: label, V: float64(ls.Queued)})
		runningRows = append(runningRows, telemetry.GaugeRow{Labels: label, V: float64(ls.Running)})
		weightRows = append(weightRows, telemetry.GaugeRow{Labels: label, V: float64(ls.Weight)})
	}
	for _, g := range []struct {
		name, help string
		rows       []telemetry.GaugeRow
	}{
		{"tsmod_tenant_queued", "Jobs waiting in the tenant's scheduler lane.", queuedRows},
		{"tsmod_tenant_running", "Tenant jobs currently running.", runningRows},
		{"tsmod_tenant_weight", "Fair-share weight of the tenant's lane.", weightRows},
	} {
		if len(g.rows) == 0 {
			continue
		}
		if err := telemetry.WritePromGaugeVec(w, g.name, g.help, g.rows); err != nil {
			return err
		}
	}

	m.mu.Lock()
	life := []telemetry.Sample{{Name: "tsmod_jobs_submitted_total", V: float64(m.submitted)}}
	for reason, n := range m.rejected {
		life = append(life, telemetry.Sample{Name: "tsmod_jobs_rejected_total",
			LabelKey: "reason", LabelValue: reason, V: float64(n)})
	}
	for state, n := range m.completed {
		life = append(life, telemetry.Sample{Name: "tsmod_jobs_completed_total",
			LabelKey: "state", LabelValue: state, V: float64(n)})
	}
	for tn, n := range m.tenantSubmitted {
		life = append(life, telemetry.Sample{Name: "tsmod_tenant_submitted_total",
			LabelKey: "tenant", LabelValue: tn, V: float64(n)})
	}
	for tn, n := range m.tenantRejected {
		life = append(life, telemetry.Sample{Name: "tsmod_tenant_rejected_total",
			LabelKey: "tenant", LabelValue: tn, V: float64(n)})
	}
	// Snapshot the per-tenant SLO histograms under met.mu; they render
	// after the lock drops.
	tqw := make([]telemetry.HistogramRow, 0, len(m.tenantQueueWait))
	for tn, h := range m.tenantQueueWait {
		tqw = append(tqw, telemetry.HistogramRow{Labels: [][2]string{{"tenant", tn}}, Snap: h.Snapshot()})
	}
	tfp := make([]telemetry.HistogramRow, 0, len(m.tenantFirstPoint))
	for tn, h := range m.tenantFirstPoint {
		tfp = append(tfp, telemetry.HistogramRow{Labels: [][2]string{{"tenant", tn}}, Snap: h.Snapshot()})
	}
	sort.Slice(tqw, func(i, j int) bool { return tqw[i].Labels[0][1] < tqw[j].Labels[0][1] })
	sort.Slice(tfp, func(i, j int) bool { return tfp[i].Labels[0][1] < tfp[j].Labels[0][1] })

	// Solver counters: retired ledger + live counters of unfolded jobs.
	agg := make(map[string]telemetry.Sample, len(m.retired))
	for k, s := range m.retired {
		agg[k] = s
	}
	for _, j := range jobs {
		if m.folded[j.ID] {
			continue
		}
		for _, s := range j.tel.Samples() {
			k := s.Key()
			r := agg[k]
			r.Name, r.LabelKey, r.LabelValue = s.Name, s.LabelKey, s.LabelValue
			r.V += s.V
			agg[k] = r
		}
	}
	m.mu.Unlock()

	if err := telemetry.WritePromSamples(w, life); err != nil {
		return err
	}
	hists := []struct {
		name, help string
		h          *telemetry.Histogram
	}{
		{"tsmod_job_queue_wait_seconds", "Submit-to-start queue wait per job.", &m.queueWait},
		{"tsmod_job_first_point_seconds", "Submit-to-first-front-point latency per job.", &m.firstPoint},
		{"tsmod_job_duration_seconds", "Submit-to-terminal-state duration per job.", &m.duration},
	}
	for _, h := range hists {
		if err := telemetry.WritePromHistogram(w, h.name, h.help, h.h.Snapshot(), 1e-9); err != nil {
			return err
		}
	}
	for _, hv := range []struct {
		name, help string
		rows       []telemetry.HistogramRow
	}{
		{"tsmod_tenant_queue_wait_seconds", "Submit-to-start queue wait per job, by tenant.", tqw},
		{"tsmod_tenant_first_point_seconds", "Submit-to-first-front-point latency per job, by tenant.", tfp},
	} {
		if len(hv.rows) == 0 {
			continue
		}
		if err := telemetry.WritePromHistogramVec(w, hv.name, hv.help, hv.rows, 1e-9); err != nil {
			return err
		}
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	solver := make([]telemetry.Sample, 0, len(agg))
	for _, k := range keys {
		solver = append(solver, agg[k])
	}
	return telemetry.WritePromSamples(w, solver)
}
