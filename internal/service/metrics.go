package service

import (
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// svcMetrics backs the service's Prometheus endpoint: submission and
// completion counters, the per-job SLO histograms, and the aggregation of
// solver telemetry across jobs. Every exposed series is monotone by
// construction between scrapes — the lint gate in scripts/metricslint
// depends on it:
//
//   - The lifecycle counters and SLO histograms only ever increment.
//   - Solver counters (tsmo_*) are the sum of a retired ledger plus the
//     live counters of running jobs. A job's final counter values are
//     folded into the ledger exactly once as it turns terminal (inside the
//     job's doneOnce), and folded jobs are skipped by the live sum, so a
//     series can never go backwards when a job finishes or is evicted —
//     eviction only forgets the folded marker, never the ledger.
//
// Lock order: j.mu or s.mu may be held when taking met.mu, never the
// reverse — svcMetrics calls out to nothing.
type svcMetrics struct {
	mu        sync.Mutex
	submitted int64
	rejected  map[string]int64 // reason -> submissions refused
	completed map[string]int64 // terminal state -> jobs
	retired   map[string]telemetry.Sample
	folded    map[string]bool // job IDs whose telemetry is in retired

	// The SLO histograms, in nanoseconds (exposed in seconds):
	// submit->start, submit->first front point, submit->terminal.
	queueWait  telemetry.Histogram
	firstPoint telemetry.Histogram
	duration   telemetry.Histogram
}

func newSvcMetrics() *svcMetrics {
	return &svcMetrics{
		rejected:  make(map[string]int64),
		completed: make(map[string]int64),
		retired:   make(map[string]telemetry.Sample),
		folded:    make(map[string]bool),
	}
}

func (m *svcMetrics) submit() {
	m.mu.Lock()
	m.submitted++
	m.mu.Unlock()
}

func (m *svcMetrics) reject(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

func (m *svcMetrics) complete(state string, queued, total time.Duration, sawPoint bool, firstPoint time.Duration) {
	m.mu.Lock()
	m.completed[state]++
	m.mu.Unlock()
	m.queueWait.ObserveDuration(queued)
	m.duration.ObserveDuration(total)
	if sawPoint {
		m.firstPoint.ObserveDuration(firstPoint)
	}
}

// fold moves a terminal job's final telemetry into the retired ledger.
// Called exactly once per job (the job's doneOnce).
func (m *svcMetrics) fold(jobID string, samples []telemetry.Sample) {
	m.mu.Lock()
	for _, s := range samples {
		k := s.Key()
		r := m.retired[k]
		r.Name, r.LabelKey, r.LabelValue = s.Name, s.LabelKey, s.LabelValue
		r.V += s.V
		m.retired[k] = r
	}
	m.folded[jobID] = true
	m.mu.Unlock()
}

// forget drops an evicted job's folded marker. Its retired sums stay.
func (m *svcMetrics) forget(jobID string) {
	m.mu.Lock()
	delete(m.folded, jobID)
	m.mu.Unlock()
}

// writeMetrics renders the full Prometheus text-format exposition:
// build info, queue/pool gauges, lifecycle counters, SLO histograms, and
// the cross-job tsmo_* solver counters. jobs is the retained-job list,
// captured under s.mu by the caller before met.mu is taken here.
func (m *svcMetrics) writeMetrics(w io.Writer, st Stats, jobs []*Job) error {
	version := st.Version
	if version == "" {
		version = "unknown"
	}
	if err := telemetry.WritePromGauge(w, "tsmod_build_info",
		"Build metadata; the value is always 1.",
		[][2]string{{"version", version}}, 1); err != nil {
		return err
	}
	gauges := []struct {
		name, help string
		v          float64
	}{
		{"tsmod_workers", "Configured worker-pool size.", float64(st.Workers)},
		{"tsmod_busy_workers", "Workers currently running a job.", float64(st.Busy)},
		{"tsmod_queue_len", "Jobs waiting in the bounded queue.", float64(st.QueueLen)},
		{"tsmod_queue_cap", "Capacity of the bounded queue.", float64(st.QueueCap)},
	}
	for _, g := range gauges {
		if err := telemetry.WritePromGauge(w, g.name, g.help, nil, g.v); err != nil {
			return err
		}
	}

	m.mu.Lock()
	life := []telemetry.Sample{{Name: "tsmod_jobs_submitted_total", V: float64(m.submitted)}}
	for reason, n := range m.rejected {
		life = append(life, telemetry.Sample{Name: "tsmod_jobs_rejected_total",
			LabelKey: "reason", LabelValue: reason, V: float64(n)})
	}
	for state, n := range m.completed {
		life = append(life, telemetry.Sample{Name: "tsmod_jobs_completed_total",
			LabelKey: "state", LabelValue: state, V: float64(n)})
	}

	// Solver counters: retired ledger + live counters of unfolded jobs.
	agg := make(map[string]telemetry.Sample, len(m.retired))
	for k, s := range m.retired {
		agg[k] = s
	}
	for _, j := range jobs {
		if m.folded[j.ID] {
			continue
		}
		for _, s := range j.tel.Samples() {
			k := s.Key()
			r := agg[k]
			r.Name, r.LabelKey, r.LabelValue = s.Name, s.LabelKey, s.LabelValue
			r.V += s.V
			agg[k] = r
		}
	}
	m.mu.Unlock()

	if err := telemetry.WritePromSamples(w, life); err != nil {
		return err
	}
	hists := []struct {
		name, help string
		h          *telemetry.Histogram
	}{
		{"tsmod_job_queue_wait_seconds", "Submit-to-start queue wait per job.", &m.queueWait},
		{"tsmod_job_first_point_seconds", "Submit-to-first-front-point latency per job.", &m.firstPoint},
		{"tsmod_job_duration_seconds", "Submit-to-terminal-state duration per job.", &m.duration},
	}
	for _, h := range hists {
		if err := telemetry.WritePromHistogram(w, h.name, h.help, h.h.Snapshot(), 1e-9); err != nil {
			return err
		}
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	solver := make([]telemetry.Sample, 0, len(agg))
	for _, k := range keys {
		solver = append(solver, agg[k])
	}
	return telemetry.WritePromSamples(w, solver)
}
