package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dynamic"
	"repro/internal/flight"
	"repro/internal/resultio"
)

// patchInstance sends a PATCH /v1/jobs/{id}/instance with the given body.
func patchInstance(t *testing.T, base, id string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, base+"/v1/jobs/"+id+"/instance", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func cancelMut(customer int) dynamic.Mutation {
	return dynamic.Mutation{Version: dynamic.Version, Op: dynamic.CancelCustomer, Customer: customer}
}

// blockWorker occupies the single worker with a long job so the next
// submission stays queued (and its mutation schedule accepts epochs
// deterministically). The returned func cancels the blocker.
func blockWorker(t *testing.T, base string) func() {
	t.Helper()
	resp := postJob(t, base, longSpec())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit: %s", resp.Status)
	}
	sub := decodeBody[SubmitResponse](t, resp)
	waitHTTPState(t, base, sub.ID, StateRunning)
	return func() {
		mustDo(t, http.MethodDelete, base+"/v1/jobs/"+sub.ID).Body.Close()
	}
}

// TestE2EDynamicMutation drives the live-mutation API over real HTTP:
// PATCH a batch onto a queued job (epoch auto-pinned to 1) and an inline
// mutation at an explicit later barrier, watch both epochs apply on the
// SSE stream, check the status counters, the flight-recorder marker and
// the Retry-After contract, and confirm every 4xx/409 path.
func TestE2EDynamicMutation(t *testing.T) {
	_, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 4, MaxEvaluations: -1, CheckpointEvery: 3})
	base := srv.URL
	release := blockWorker(t, base)

	spec := longSpec()
	spec.GranularK = 8
	spec.EvalWorkers = 2
	spec.SampleEvery = 2000
	resp := postJob(t, base, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	id := decodeBody[SubmitResponse](t, resp).ID

	// Batch PATCH while queued: pinned to the first barrier.
	resp = patchInstance(t, base, id, MutateRequest{
		Mutations: []dynamic.Mutation{
			cancelMut(7),
			{Version: dynamic.Version, Op: dynamic.UpdateDemand, Customer: 9, Demand: 5},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch PATCH: %s", resp.Status)
	}
	if mr := decodeBody[MutateResponse](t, resp); mr.Epoch != 1 || mr.Mutations != 2 {
		t.Fatalf("batch PATCH pinned epoch %d with %d mutations, want 1 with 2", mr.Epoch, mr.Mutations)
	}

	// Inline PATCH at an explicit later barrier. A missing version must
	// default to the current one.
	resp = patchInstance(t, base, id, map[string]any{"epoch": 3, "op": "cancel_customer", "customer": 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline PATCH: %s", resp.Status)
	}
	if mr := decodeBody[MutateResponse](t, resp); mr.Epoch != 3 || mr.Mutations != 1 {
		t.Fatalf("inline PATCH pinned epoch %d with %d mutations, want 3 with 1", mr.Epoch, mr.Mutations)
	}

	// Malformed requests are rejected before anything is queued.
	for name, body := range map[string]any{
		"inline plus batch": map[string]any{"op": "cancel_customer", "customer": 2,
			"mutations": []dynamic.Mutation{cancelMut(4)}},
		"empty":          map[string]any{},
		"invalid target": MutateRequest{Mutations: []dynamic.Mutation{cancelMut(0)}},
		"unknown op":     map[string]any{"op": "teleport_customer", "customer": 2},
		"unknown field":  map[string]any{"op": "cancel_customer", "customer": 2, "bogus": true},
	} {
		resp = patchInstance(t, base, id, body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s PATCH: %s, want 400", name, resp.Status)
		}
	}

	st := getStatus(t, base, id)
	if st.MutationsPending != 3 {
		t.Errorf("pending mutations while queued: %d, want 3", st.MutationsPending)
	}
	if st.GranularK != 8 || st.EvalWorkers != 2 {
		t.Errorf("status knobs granular_k=%d eval_workers=%d, want 8/2", st.GranularK, st.EvalWorkers)
	}

	// Unblock the worker and watch both epochs apply in order.
	release()
	seq := streamUntil(t, base, id, "mutations", 0)
	seq = streamUntil(t, base, id, "mutations", seq)

	st = getStatus(t, base, id)
	if st.MutationEpochs != 2 || st.MutationsApplied != 3 || st.MutationsRejected != 0 {
		t.Errorf("mutation counters: epochs=%d applied=%d rejected=%d, want 2/3/0",
			st.MutationEpochs, st.MutationsApplied, st.MutationsRejected)
	}
	if st.LastMutationEpoch != 3 || st.MutationsPending != 0 {
		t.Errorf("last epoch %d pending %d, want 3/0", st.LastMutationEpoch, st.MutationsPending)
	}

	// The run is still mid-budget: its result answers 409 and tells the
	// poller when to retry, and a passed epoch can no longer be pinned.
	resp = mustGet(t, base+"/v1/jobs/"+id+"/result")
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of a running job: %s, want 409", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("409 result response missing Retry-After")
	}
	resp = patchInstance(t, base, id, map[string]any{"epoch": 1, "op": "cancel_customer", "customer": 2})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("PATCH at a passed epoch: %s, want 409", resp.Status)
	}

	// The first flight sample after a mutation barrier carries its marker.
	deadline := time.Now().Add(30 * time.Second)
	marked := false
	for !marked && time.Now().Before(deadline) {
		rec := decodeBody[flight.Recording](t, mustGet(t, base+"/v1/jobs/"+id+"/flight"))
		for _, sm := range rec.Samples {
			if strings.HasPrefix(sm.Marker, "mutation@") {
				marked = true
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !marked {
		t.Error("no flight sample carries a mutation marker")
	}

	// Terminal jobs refuse further mutations.
	mustDo(t, http.MethodDelete, base+"/v1/jobs/"+id).Body.Close()
	waitHTTPState(t, base, id, StateCanceled)
	resp = patchInstance(t, base, id, MutateRequest{Mutations: []dynamic.Mutation{cancelMut(2)}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("PATCH on a terminal job: %s, want 409", resp.Status)
	}
}

// TestE2EMutateNotDynamic: a job without deterministic checkpoint
// barriers (an in-run MaxSeconds budget) answers PATCH with 409.
func TestE2EMutateNotDynamic(t *testing.T) {
	_, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 4, MaxEvaluations: -1, CheckpointEvery: 3})
	base := srv.URL
	release := blockWorker(t, base)
	defer release()

	spec := smallSpec()
	spec.MaxSeconds = 30
	resp := postJob(t, base, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	id := decodeBody[SubmitResponse](t, resp).ID
	resp = patchInstance(t, base, id, MutateRequest{Mutations: []dynamic.Mutation{cancelMut(2)}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("PATCH on a non-checkpointed job: %s, want 409", resp.Status)
	}
}

// TestE2EResumeGranularKMismatch: resuming a checkpoint under a different
// granular neighborhood shape fails with an error that names the
// granular_k field, not a generic digest/checksum failure. EvalWorkers,
// by contrast, only shards delta evaluation and may change on resume.
func TestE2EResumeGranularKMismatch(t *testing.T) {
	_, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 4, MaxEvaluations: -1, CheckpointEvery: 3})
	base := srv.URL

	spec := longSpec()
	spec.GranularK = 6
	resp := postJob(t, base, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	id := decodeBody[SubmitResponse](t, resp).ID

	var ckpt []byte
	deadline := time.Now().Add(30 * time.Second)
	for ckpt == nil {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		resp := mustGet(t, base+"/v1/jobs/"+id+"/checkpoint")
		if resp.StatusCode == http.StatusOK {
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			ckpt = data
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	mustDo(t, http.MethodDelete, base+"/v1/jobs/"+id).Body.Close()
	waitHTTPState(t, base, id, StateCanceled)

	bad := longSpec()
	bad.GranularK = 9
	bad.Resume = ckpt
	resp = postJob(t, base, bad)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("resume submit: %s", resp.Status)
	}
	st := waitHTTPState(t, base, decodeBody[SubmitResponse](t, resp).ID, StateFailed)
	if !strings.Contains(st.Error, "granular_k=6") || !strings.Contains(st.Error, "granular_k=9") {
		t.Errorf("mismatch error does not name both granular_k values: %q", st.Error)
	}
	if strings.Contains(st.Error, "digest") {
		t.Errorf("mismatch surfaced as an opaque digest failure: %q", st.Error)
	}
}

// TestE2EDynamicDeterminism pins the dynamic golden contract at the
// service boundary: two fresh services given the same spec and the same
// mutation batch at the same explicit epoch produce bit-identical stored
// results.
func TestE2EDynamicDeterminism(t *testing.T) {
	run := func() *resultio.FrontFile {
		_, srv := e2eServer(t, Config{Workers: 1, QueueDepth: 4, MaxEvaluations: -1, CheckpointEvery: 3})
		base := srv.URL
		release := blockWorker(t, base)

		spec := smallSpec()
		spec.MaxEvaluations = 60_000
		resp := postJob(t, base, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %s", resp.Status)
		}
		id := decodeBody[SubmitResponse](t, resp).ID
		resp = patchInstance(t, base, id, MutateRequest{
			Epoch: 2,
			Mutations: []dynamic.Mutation{
				cancelMut(5),
				{Version: dynamic.Version, Op: dynamic.UpdateDemand, Customer: 3, Demand: 5},
			},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("PATCH: %s", resp.Status)
		}
		resp.Body.Close()
		release()
		waitHTTPState(t, base, id, StateDone)
		st := getStatus(t, base, id)
		if st.MutationEpochs != 1 || st.MutationsApplied != 2 {
			t.Fatalf("mutation epochs=%d applied=%d, want 1/2 (budget too small to reach barrier 2?)",
				st.MutationEpochs, st.MutationsApplied)
		}
		ff := decodeBody[resultio.FrontFile](t, mustGet(t, base+"/v1/jobs/"+id+"/result"))
		if len(ff.Solutions) == 0 {
			t.Fatal("mutated run produced no solutions")
		}
		return &ff
	}

	a, b := run(), run()
	if a.Evaluations != b.Evaluations {
		t.Errorf("evaluations differ: %d vs %d", a.Evaluations, b.Evaluations)
	}
	if !reflect.DeepEqual(a.Solutions, b.Solutions) {
		t.Error("same (seed, mutation log) produced different fronts over HTTP")
	}
}
