// Cross-node share plumbing: the service side of core.ShareExchange.
//
// Every cluster-share job owns one shareFeed — the ordered list of
// ShareBatch values its searcher has published, replayable by index so SSE
// subscribers (sibling shards on other nodes, reached through the
// coordinator's share proxy) resume with an `after` cursor exactly like
// the job event stream. The gather half is pluggable: Config.ShareDial
// returns a ShareGatherer that collects the sibling batches of an epoch,
// typically internal/cluster's SSE gatherer. The service itself never
// dials anything, keeping the service → cluster dependency one-way.
package service

import (
	"context"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/core"
)

// ShareGatherer collects sibling-shard batches for a cluster-share job.
// Gather blocks until every live sibling's batch for the epoch is
// available (or the sibling is known finished, or ctx is cancelled) and
// returns the batches gathered — never the local shard's own. Close
// releases the gatherer's connections; it is called once, after the job's
// search has returned.
type ShareGatherer interface {
	Gather(ctx context.Context, epoch int) ([]core.ShareBatch, error)
	Close()
}

// shareFeed is one job's outbound share stream: the batches published so
// far (index-addressable, so subscribers resume by position), a notify
// channel closed and replaced on every append, and a done flag raised when
// the job turns terminal — the signal that tells subscribers no further
// epochs will ever arrive from this shard.
type shareFeed struct {
	mu      sync.Mutex
	batches []core.ShareBatch
	notify  chan struct{}
	done    bool
}

func newShareFeed() *shareFeed {
	return &shareFeed{notify: make(chan struct{})}
}

// publish appends one batch and wakes the subscribers.
func (f *shareFeed) publish(b core.ShareBatch) {
	f.mu.Lock()
	f.batches = append(f.batches, b)
	close(f.notify)
	f.notify = make(chan struct{})
	f.mu.Unlock()
}

// prime replays a checkpointed publish history into the feed — the resume
// path of a migrated job. The restored trajectory republishes the epochs
// after the checkpoint bit-identically, so indices and contents line up
// with what subscribers saw from the previous incarnation.
func (f *shareFeed) prime(history []core.ShareBatch) {
	f.mu.Lock()
	if len(history) > len(f.batches) {
		f.batches = append([]core.ShareBatch(nil), history...)
		close(f.notify)
		f.notify = make(chan struct{})
	}
	f.mu.Unlock()
}

// history snapshots the published batches for checkpoint capture.
func (f *shareFeed) history() []core.ShareBatch {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]core.ShareBatch(nil), f.batches...)
}

// since returns the batches at index >= after, a channel closed on the
// next append, the total published count, and whether the feed is done.
func (f *shareFeed) since(after int) (batches []core.ShareBatch, notify <-chan struct{}, total int, done bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after < len(f.batches) {
		batches = append(batches, f.batches[after:]...)
	}
	return batches, f.notify, len(f.batches), f.done
}

// finish marks the feed complete and wakes the subscribers. Idempotent.
func (f *shareFeed) finish() {
	f.mu.Lock()
	if !f.done {
		f.done = true
		close(f.notify)
		f.notify = make(chan struct{})
	}
	f.mu.Unlock()
}

// shareHub registers the node's share feeds by (group, shard). Feeds are
// created lazily by publisher and subscriber alike — a sibling may dial in
// before the local job has started — and live until the owning job is
// evicted.
type shareHub struct {
	mu    sync.Mutex
	feeds map[string]*shareFeed
}

func newShareHub() *shareHub {
	return &shareHub{feeds: make(map[string]*shareFeed)}
}

func shareKey(group string, shard int) string {
	return group + "/" + strconv.Itoa(shard)
}

// feed returns the feed for (group, shard), creating it on first use.
func (h *shareHub) feed(group string, shard int) *shareFeed {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := shareKey(group, shard)
	f, ok := h.feeds[key]
	if !ok {
		f = newShareFeed()
		h.feeds[key] = f
	}
	return f
}

// drop removes a feed (job eviction).
func (h *shareHub) drop(group string, shard int) {
	h.mu.Lock()
	delete(h.feeds, shareKey(group, shard))
	h.mu.Unlock()
}

// jobExchange adapts one job's feed plus its dialed gatherer to
// core.ShareExchange. Publish stamps the shard index; History and Prime
// delegate to the feed so checkpoints carry the publish history across a
// migration.
type jobExchange struct {
	shard  int
	feed   *shareFeed
	gather ShareGatherer // nil for a single-shard group: nothing to gather
}

func (x *jobExchange) Publish(b core.ShareBatch) error {
	b.Shard = x.shard
	x.feed.publish(b)
	return nil
}

func (x *jobExchange) Gather(ctx context.Context, epoch int) ([]core.ShareBatch, error) {
	if x.gather == nil {
		return nil, nil
	}
	return x.gather.Gather(ctx, epoch)
}

func (x *jobExchange) History() []core.ShareBatch { return x.feed.history() }

func (x *jobExchange) Prime(history []core.ShareBatch) { x.feed.prime(history) }

// validateShareSpec checks the cluster-share fields of a JobSpec against
// the service configuration. Zero-valued fields mean the job does not
// participate in cross-node sharing.
func validateShareSpec(spec *JobSpec, limits *Config) error {
	if spec.ShareGroup == "" {
		if spec.ShareShard != 0 || spec.ShareShards != 0 || spec.ShareEvery != 0 {
			return fmt.Errorf("share_group: required when share_shard, share_shards or share_every is set")
		}
		return nil
	}
	if spec.ShareShards < 1 {
		return fmt.Errorf("share_shards: must be >= 1, got %d", spec.ShareShards)
	}
	if spec.ShareShard < 0 || spec.ShareShard >= spec.ShareShards {
		return fmt.Errorf("share_shard: %d out of range [0,%d)", spec.ShareShard, spec.ShareShards)
	}
	if spec.ShareEvery < 0 {
		return fmt.Errorf("share_every: must be >= 0, got %d", spec.ShareEvery)
	}
	if spec.Algorithm == "combined" {
		return fmt.Errorf("share_group: cluster sharing does not support the combined variant")
	}
	if spec.ShareShards > 1 && limits.ShareDial == nil {
		return fmt.Errorf("share_group: this node is not part of a cluster (no share dialer configured)")
	}
	return nil
}
