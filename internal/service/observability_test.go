package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/flight"
)

// otlpDoc mirrors just enough of the OTLP/JSON shape to verify exports.
type otlpDoc struct {
	ResourceSpans []struct {
		ScopeSpans []struct {
			Spans []otlpTestSpan `json:"spans"`
		} `json:"scopeSpans"`
	} `json:"resourceSpans"`
}

type otlpTestSpan struct {
	TraceID      string `json:"traceId"`
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId"`
	Name         string `json:"name"`
	Start        string `json:"startTimeUnixNano"`
	End          string `json:"endTimeUnixNano"`
}

func (d otlpDoc) spans() []otlpTestSpan {
	var out []otlpTestSpan
	for _, rs := range d.ResourceSpans {
		for _, ss := range rs.ScopeSpans {
			out = append(out, ss.Spans...)
		}
	}
	return out
}

// TestE2ETraceparentPropagation is the tracing acceptance test: a
// traceparent header on POST /v1/jobs must propagate to every span of the
// job's lifecycle, and the export must form a single tree rooted at the
// "job" span (itself a child of the caller's remote span) covering
// accept, queue, run, and the searcher phases.
func TestE2ETraceparentPropagation(t *testing.T) {
	dir := t.TempDir()
	_, srv := e2eServer(t, Config{Workers: 1, TraceDir: dir})
	base := srv.URL

	const remoteTrace = "0af7651916cd43dd8448eb211c80319c"
	const remoteSpan = "b7ad6b7169203331"
	const header = "00-" + remoteTrace + "-" + remoteSpan + "-01"

	body, err := json.Marshal(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", header)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	if tp := resp.Header.Get("traceparent"); !strings.Contains(tp, remoteTrace) {
		t.Fatalf("submit response traceparent %q does not carry the caller's trace ID", tp)
	}
	sub := decodeBody[SubmitResponse](t, resp)
	waitHTTPState(t, base, sub.ID, StateDone)

	var doc otlpDoc
	if err := json.NewDecoder(mustGet(t, base+"/v1/jobs/"+sub.ID+"/trace").Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	spans := doc.spans()
	if len(spans) == 0 {
		t.Fatal("trace export has no spans")
	}

	byID := make(map[string]otlpTestSpan, len(spans))
	names := make(map[string]int)
	for _, sp := range spans {
		if sp.TraceID != remoteTrace {
			t.Fatalf("span %q has trace ID %s, want the caller's %s", sp.Name, sp.TraceID, remoteTrace)
		}
		byID[sp.SpanID] = sp
		names[sp.Name]++
	}
	for _, want := range []string{"job", "accept", "queue", "run", "deme.run", "construct", "sweep"} {
		if names[want] == 0 {
			t.Errorf("missing %q span (got %v)", want, names)
		}
	}
	// Single rooted tree: exactly one span (the job root) parents to the
	// remote span; every other span's parent chain reaches it.
	roots := 0
	for _, sp := range spans {
		if sp.ParentSpanID == remoteSpan {
			roots++
			if sp.Name != "job" {
				t.Errorf("span %q roots at the remote parent; only the job span should", sp.Name)
			}
			continue
		}
		hops := 0
		cur := sp
		for cur.ParentSpanID != remoteSpan {
			parent, ok := byID[cur.ParentSpanID]
			if !ok {
				t.Fatalf("span %q has dangling parent %s", sp.Name, cur.ParentSpanID)
			}
			cur = parent
			if hops++; hops > len(spans) {
				t.Fatalf("parent cycle reaching from span %q", sp.Name)
			}
		}
	}
	if roots != 1 {
		t.Fatalf("export has %d spans parented to the caller, want exactly the job span", roots)
	}
	for _, sp := range spans {
		start, _ := strconv.ParseInt(sp.Start, 10, 64)
		end, _ := strconv.ParseInt(sp.End, 10, 64)
		if end < start {
			t.Errorf("span %q ends before it starts", sp.Name)
		}
	}

	// The terminal export landed in TraceDir with the same tree.
	data, err := os.ReadFile(filepath.Join(dir, sub.ID+".trace.json"))
	if err != nil {
		t.Fatal(err)
	}
	var fileDoc otlpDoc
	if err := json.Unmarshal(data, &fileDoc); err != nil {
		t.Fatal(err)
	}
	if len(fileDoc.spans()) != len(spans) {
		t.Errorf("file export has %d spans, endpoint served %d", len(fileDoc.spans()), len(spans))
	}
}

// TestE2EFlightRecording checks the flight endpoint end to end: a finished
// job serves a recording with its identity and at least one sample, and
// two same-spec submissions record bit-identical samples (the
// zero-diff baseline cmd/tsmo-compare builds on).
func TestE2EFlightRecording(t *testing.T) {
	_, srv := e2eServer(t, Config{Workers: 1})
	base := srv.URL

	spec := smallSpec()
	spec.MaxEvaluations = 5000
	spec.SampleEvery = 500
	recordings := make([]flight.Recording, 2)
	for i := range recordings {
		sub := decodeBody[SubmitResponse](t, postJob(t, base, spec))
		waitHTTPState(t, base, sub.ID, StateDone)
		if err := json.NewDecoder(mustGet(t, base+"/v1/jobs/"+sub.ID+"/flight").Body).Decode(&recordings[i]); err != nil {
			t.Fatal(err)
		}
		rec := recordings[i]
		if rec.Job != sub.ID || rec.Algorithm != "sequential" || rec.SampleEvery != 500 {
			t.Fatalf("recording identity: %+v", rec)
		}
		if len(rec.Samples) == 0 {
			t.Fatal("finished job has no flight samples")
		}
		for j := 1; j < len(rec.Samples); j++ {
			if rec.Samples[j].Evals <= rec.Samples[j-1].Evals {
				t.Fatalf("samples out of order: %+v", rec.Samples)
			}
		}
	}
	if !reflect.DeepEqual(recordings[0].Samples, recordings[1].Samples) {
		t.Fatal("same-spec jobs recorded different flight samples")
	}
	rows, onlyA, onlyB := flight.Diff(recordings[0], recordings[1])
	if onlyA != 0 || onlyB != 0 || flight.MaxAbsDeltaHV(rows) != 0 {
		t.Fatalf("identical runs diff non-zero: onlyA=%d onlyB=%d maxDeltaHV=%g",
			onlyA, onlyB, flight.MaxAbsDeltaHV(rows))
	}
}

// TestE2EMetricsExposition scrapes GET /metrics before and after a job
// completes: the exposition must be well-formed (the full format lint
// lives in scripts/metricslint), carry the lifecycle counters, SLO
// histograms and aggregated solver counters, and stay monotone across the
// job's terminal transition and fold.
func TestE2EMetricsExposition(t *testing.T) {
	_, srv := e2eServer(t, Config{Workers: 1, Version: "metrics-test"})
	base := srv.URL

	scrape := func() map[string]float64 {
		t.Helper()
		resp := mustGet(t, base+"/metrics")
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		defer resp.Body.Close()
		vals := make(map[string]float64)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			cut := strings.LastIndexByte(line, ' ')
			if cut < 0 {
				t.Fatalf("malformed exposition line %q", line)
			}
			v, err := strconv.ParseFloat(line[cut+1:], 64)
			if err != nil {
				t.Fatalf("unparsable value in %q: %v", line, err)
			}
			if _, dup := vals[line[:cut]]; dup {
				t.Fatalf("duplicate series %q", line[:cut])
			}
			vals[line[:cut]] = v
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		return vals
	}

	before := scrape()
	if before[`tsmod_build_info{version="metrics-test"}`] != 1 {
		t.Error("missing build info")
	}

	sub := decodeBody[SubmitResponse](t, postJob(t, base, smallSpec()))
	waitHTTPState(t, base, sub.ID, StateDone)
	mid := scrape()
	after := scrape()

	if mid["tsmod_jobs_submitted_total"] != 1 || mid[`tsmod_jobs_completed_total{state="done"}`] != 1 {
		t.Errorf("lifecycle counters: submitted=%g completed=%g",
			mid["tsmod_jobs_submitted_total"], mid[`tsmod_jobs_completed_total{state="done"}`])
	}
	for _, h := range []string{"tsmod_job_queue_wait_seconds", "tsmod_job_duration_seconds", "tsmod_job_first_point_seconds"} {
		if mid[h+"_count"] != 1 {
			t.Errorf("%s_count = %g, want 1", h, mid[h+"_count"])
		}
	}
	if mid["tsmo_search_evaluations_total"] <= 0 {
		t.Error("aggregated solver counters missing after the job completed")
	}
	// Monotonicity across scrapes (the job folded between before and mid).
	for series, v := range mid {
		if prev, ok := before[series]; ok && strings.HasSuffix(strings.SplitN(series, "{", 2)[0], "_total") && v < prev {
			t.Errorf("counter %s went backwards: %g -> %g", series, prev, v)
		}
		if later, ok := after[series]; ok && strings.HasSuffix(strings.SplitN(series, "{", 2)[0], "_total") && later < v {
			t.Errorf("counter %s went backwards: %g -> %g", series, v, later)
		}
	}
}
