package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/dynamic"
)

// The write-ahead job journal. Every job-state transition the service must
// survive a crash is appended — and fsynced — to an append-only JSONL file
// before the transition takes effect, so a kill -9 at any instant loses at
// most the record being written. Recovery (see recover.go) replays the
// journal to rebuild the job table: terminal jobs serve their persisted
// results, incomplete jobs are re-queued from their latest checkpoint.
//
// Record types, in lifecycle order:
//
//	submit    job accepted; carries the full JobSpec (and idempotency key)
//	start     a worker began running the job
//	ckpt      a search checkpoint reached disk (jobs/<id>/ckpt.json)
//	mutate    an instance-mutation batch was accepted; Barrier is its
//	          epoch and Muts the batch — journaled before the batch is
//	          visible to the run, so recovery replays it exactly once
//	done      the job finished; jobs/<id>/result.json holds the front
//	failed    the job failed; Error carries the message
//	canceled  the job was canceled (its partial result, if any, persisted)
//	evict     the job fell out of retention; its directory is gone
//
// A torn final record — the crash hit mid-append — is logged, counted and
// dropped; recovery never refuses to start over journal damage.
type journalRecord struct {
	Type    string    `json:"type"`
	TS      time.Time `json:"ts"`
	Job     string    `json:"job,omitempty"`
	Spec    *JobSpec  `json:"spec,omitempty"`
	Barrier int       `json:"barrier,omitempty"`
	// Muts is a mutate record's mutation batch, replayed by recovery.
	Muts []dynamic.Mutation `json:"muts,omitempty"`
	// Note carries the human-readable half of a ckpt record's config
	// fingerprint (granular_k, eval_workers) for operators reading the
	// journal; recovery ignores it.
	Note  string `json:"note,omitempty"`
	Error string `json:"error,omitempty"`
}

// journal is the fsync-on-append JSONL WAL. Appends come from submission
// (under the service lock), checkpoint sinks (solver goroutines) and
// terminal transitions (under job locks), so the journal serializes them
// itself; mu is a leaf lock — nothing is acquired while holding it.
type journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

// openJournal reads every intact record of the journal at path (creating
// it when absent) and opens it for appending. Records that fail to parse —
// the torn tail of a crashed append, or any other damage — are dropped and
// counted, never fatal: losing one record costs at most one job's latest
// transition, which recovery handles, while refusing to start would cost
// the whole journal.
func openJournal(path string, logger *slog.Logger) (*journal, []journalRecord, int, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("opening journal: %w", err)
	}
	var recs []journalRecord
	torn := 0
	sc := bufio.NewScanner(io.NewSectionReader(f, 0, 1<<62))
	sc.Buffer(make([]byte, 0, 64*1024), maxBodyBytes+64*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(text, &rec); err != nil {
			torn++
			if logger != nil {
				logger.Warn("journal: dropping unreadable record", "line", line, "error", err)
			}
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		// An oversized or unreadable tail: keep what parsed so far.
		torn++
		if logger != nil {
			logger.Warn("journal: truncated scan", "line", line, "error", err)
		}
	}
	return &journal{path: path, f: f}, recs, torn, nil
}

// append durably writes one record: marshal, write, fsync.
func (jl *journal) append(rec journalRecord) error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	rec.TS = time.Now().UTC()
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: encoding %s record: %w", rec.Type, err)
	}
	data = append(data, '\n')
	if _, err := jl.f.Write(data); err != nil {
		return fmt.Errorf("journal: appending %s record: %w", rec.Type, err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("journal: syncing %s record: %w", rec.Type, err)
	}
	return nil
}

// rewrite compacts the journal to exactly recs: write a temporary file,
// fsync it, rename it over the journal, fsync the directory. Called during
// recovery, before the worker pool starts, so no append races it.
func (jl *journal) rewrite(recs []journalRecord) error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	tmp := jl.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: creating %s: %w", tmp, err)
	}
	w := bufio.NewWriter(f)
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			return fmt.Errorf("journal: encoding compacted record: %w", err)
		}
		w.Write(data)     //nolint:errcheck // flushed below
		w.WriteByte('\n') //nolint:errcheck // flushed below
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("journal: writing compacted journal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: syncing compacted journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, jl.path); err != nil {
		return fmt.Errorf("journal: installing compacted journal: %w", err)
	}
	if err := jl.f.Close(); err != nil {
		return err
	}
	nf, err := os.OpenFile(jl.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: reopening compacted journal: %w", err)
	}
	jl.f = nf
	return syncDir(filepath.Dir(jl.path))
}

// Close releases the journal file.
func (jl *journal) Close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.f.Close()
}

// writeFileSync durably installs data at path: write to a sibling
// temporary file, fsync, rename into place, fsync the directory — so a
// crash leaves either the old file or the new one, never a torn mix.
func writeFileSync(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
