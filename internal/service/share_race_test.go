package service

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// echoGatherer is a ShareGatherer stub: every Gather immediately returns
// one sibling batch for the requested epoch, so the share ingress path
// (fold + telemetry) runs at full cadence without a second node.
type echoGatherer struct{ shard int }

func (g *echoGatherer) Gather(_ context.Context, epoch int) ([]core.ShareBatch, error) {
	return []core.ShareBatch{{Shard: g.shard ^ 1, Epoch: epoch}}, nil
}

func (g *echoGatherer) Close() {}

// TestShareSSEFanoutRace hammers the share fan-out under the race
// detector: one cluster-share job publishes epoch batches while dozens of
// SSE subscribers connect at random cursors, read a little, and drop —
// with event-stream subscribers doing the same on the job event feed, and
// the share ingress (Gather + fold) running concurrently throughout. A
// final patient subscriber must then replay the complete feed: contiguous
// ids from its cursor and a terminating done event.
func TestShareSSEFanoutRace(t *testing.T) {
	svc := New(Config{
		Workers:        1,
		QueueDepth:     4,
		MaxEvaluations: -1,
		ShareDial: func(_ string, shard, _ int, _ *telemetry.Telemetry) (ShareGatherer, error) {
			return &echoGatherer{shard: shard}, nil
		},
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	defer svc.Close()

	j, err := svc.Submit(JobSpec{
		Instance:       InstanceSpec{Class: "R1", N: 50, Seed: 3},
		Algorithm:      "sequential",
		Seed:           11,
		MaxEvaluations: 40000,
		ShareGroup:     "racegroup",
		ShareShard:     0,
		ShareShards:    2,
		ShareEvery:     2,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	churn := func(url string) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(int64(len(url)))) //nolint:gosec // test jitter only
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(fmt.Sprintf("%s?after=%d", url, rng.Intn(8)))
			if err != nil {
				continue
			}
			// Read a handful of lines, then abandon the stream mid-flight.
			sc := bufio.NewScanner(resp.Body)
			for i := 0; i < rng.Intn(20); i++ {
				if !sc.Scan() {
					break
				}
			}
			resp.Body.Close()
		}
	}
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go churn(srv.URL + "/v1/shares/racegroup/0")
	}
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go churn(srv.URL + "/v1/jobs/" + j.ID + "/events")
	}

	deadline := time.Now().Add(60 * time.Second)
	for !j.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish under subscriber churn")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(done)
	wg.Wait()
	if st := j.State(); st != StateDone {
		t.Fatalf("job finished %s under churn", st)
	}

	// Full replay: every batch in order, then done.
	resp, err := http.Get(srv.URL + "/v1/shares/racegroup/0?after=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var batches, wantID int64
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			wantID++
			if line != fmt.Sprintf("id: %d", wantID) {
				t.Fatalf("replay out of sequence: got %q, want id %d", line, wantID)
			}
		case line == "event: share":
			batches++
		case line == "event: done":
			sawDone = true
		}
		if sawDone {
			break
		}
	}
	if batches == 0 {
		t.Fatal("share feed replayed no batches")
	}
	if !sawDone {
		t.Fatal("share feed never terminated with a done event")
	}
}

// TestShareIngressConcurrentSubscribers pins the feed primitives under
// direct concurrent use: many publishers racing many since-cursors, one
// finish, no lost updates.
func TestShareIngressConcurrentSubscribers(t *testing.T) {
	feed := newShareFeed()
	const n = 200
	var wg sync.WaitGroup
	var read int64
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			after := 0
			for {
				batches, notify, _, done := feed.since(after)
				after += len(batches)
				atomic.AddInt64(&read, int64(len(batches)))
				if done && len(batches) == 0 {
					return
				}
				if len(batches) == 0 {
					<-notify
				}
			}
		}()
	}
	for i := 1; i <= n; i++ {
		feed.publish(core.ShareBatch{Epoch: i})
	}
	feed.finish()
	wg.Wait()
	if read != 8*n {
		t.Fatalf("subscribers read %d batches in total, want %d", read, 8*n)
	}
}
