package wsum

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/solution"
	"repro/internal/vrptw"
)

func testInstance(t testing.TB) *vrptw.Instance {
	t.Helper()
	in, err := vrptw.Generate(vrptw.GenConfig{Class: vrptw.R1, N: 40, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestLattice(t *testing.T) {
	ws := Lattice(4)
	if len(ws) != 15 {
		t.Fatalf("Lattice(4) has %d vectors, want 15", len(ws))
	}
	for _, w := range ws {
		sum := w.Distance + w.Vehicles + w.Tardiness
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("weights %+v sum to %g", w, sum)
		}
		if w.Distance < 0 || w.Vehicles < 0 || w.Tardiness < 0 {
			t.Errorf("negative weight in %+v", w)
		}
	}
	if len(Lattice(0)) != 3 {
		t.Errorf("Lattice(min) should fall back to resolution 1")
	}
}

func TestRandomWeightsOnSimplex(t *testing.T) {
	r := rng.New(3)
	for _, w := range RandomWeights(r, 100) {
		sum := w.Distance + w.Vehicles + w.Tardiness
		if math.Abs(sum-1) > 1e-9 || w.Distance < 0 || w.Vehicles < 0 || w.Tardiness < 0 {
			t.Fatalf("invalid simplex point %+v", w)
		}
	}
}

func TestNormalize(t *testing.T) {
	w := Weights{Distance: 2, Vehicles: 1, Tardiness: 1}.Normalize()
	if w.Distance != 0.5 || w.Vehicles != 0.25 {
		t.Errorf("Normalize wrong: %+v", w)
	}
	z := Weights{}.Normalize()
	if math.Abs(z.Distance+z.Vehicles+z.Tardiness-1) > 1e-12 {
		t.Errorf("zero weights should normalize to uniform, got %+v", z)
	}
}

func TestRunProducesValidFront(t *testing.T) {
	in := testInstance(t)
	res, err := Run(in, Config{
		Weights:          Lattice(2), // 6 vectors
		MaxEvaluations:   3000,
		NeighborhoodSize: 40,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if len(res.PerWeight) != 6 {
		t.Fatalf("PerWeight has %d entries, want 6", len(res.PerWeight))
	}
	for i, s := range res.PerWeight {
		if s == nil {
			t.Fatalf("weight %d produced no solution", i)
		}
		if err := solution.Validate(in, s); err != nil {
			t.Fatalf("weight %d: %v", i, err)
		}
	}
	for i := range res.Front {
		for j := range res.Front {
			if i != j && res.Front[i].Obj.Dominates(res.Front[j].Obj) {
				t.Fatal("front not mutually non-dominated")
			}
		}
	}
	if res.Evaluations < 3000*9/10 {
		t.Errorf("spent only %d of 3000 evaluations", res.Evaluations)
	}
}

func TestRunDeterministic(t *testing.T) {
	in := testInstance(t)
	cfg := Config{Weights: Lattice(2), MaxEvaluations: 1200, NeighborhoodSize: 30, Seed: 5}
	a, err := Run(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.PerWeight {
		if a.PerWeight[i].Obj != b.PerWeight[i].Obj {
			t.Fatalf("weight %d differs between identical runs", i)
		}
	}
}

func TestWeightsSteerTheSearch(t *testing.T) {
	in := testInstance(t)
	run := func(w Weights) solution.Objectives {
		res, err := Run(in, Config{
			Weights:          []Weights{w},
			MaxEvaluations:   4000,
			NeighborhoodSize: 40,
			Seed:             2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.PerWeight[0].Obj
	}
	distHeavy := run(Weights{Distance: 1})
	vehHeavy := run(Weights{Vehicles: 1, Distance: 0.01}) // tiny tie-break on distance
	if vehHeavy.Vehicles > distHeavy.Vehicles {
		t.Errorf("vehicle-weighted run used more vehicles (%g) than distance-weighted (%g)",
			vehHeavy.Vehicles, distHeavy.Vehicles)
	}
}

func TestRunValidation(t *testing.T) {
	in := testInstance(t)
	if _, err := Run(in, Config{Weights: Lattice(4), MaxEvaluations: 3}); err == nil {
		t.Error("budget below weight count accepted")
	}
}

func TestScalarMonotone(t *testing.T) {
	ref := solution.Objectives{Distance: 100, Vehicles: 10, Tardiness: 0}
	w := Weights{Distance: 1}.Normalize()
	a := solution.Objectives{Distance: 50, Vehicles: 10, Tardiness: 0}
	b := solution.Objectives{Distance: 60, Vehicles: 5, Tardiness: 0}
	if scalar(a, w, ref) >= scalar(b, w, ref) {
		t.Error("distance-only weights should rank the shorter solution better")
	}
}
