// Package wsum implements the baseline the paper's §II.C contrasts the
// multiobjective formulation with: "Solving the problem a number of times
// with modified weights and a single criteria approach can result in
// several pareto-optimal solutions as well". It runs a single-objective
// Tabu Search — same operators, tabu list and construction heuristic as
// TSMO — once per weight vector, scalarizing the three objectives with a
// normalized weighted sum, and returns the non-dominated set of all best
// solutions found. Comparing its front against TSMO's at an equal total
// budget quantifies the paper's argument that the unbiased multiobjective
// search is the better use of the evaluation budget.
package wsum

import (
	"fmt"
	"math"

	"repro/internal/construct"
	"repro/internal/operators"
	"repro/internal/pareto"
	"repro/internal/rng"
	"repro/internal/solution"
	"repro/internal/tabu"
	"repro/internal/vrptw"
)

// Weights is one scalarization of the three objectives. Components must be
// non-negative and not all zero; Normalize scales them to sum 1.
type Weights struct {
	Distance  float64
	Vehicles  float64
	Tardiness float64
}

// Normalize returns the weights scaled to sum to 1.
func (w Weights) Normalize() Weights {
	s := w.Distance + w.Vehicles + w.Tardiness
	if s == 0 {
		return Weights{Distance: 1.0 / 3, Vehicles: 1.0 / 3, Tardiness: 1.0 / 3}
	}
	return Weights{w.Distance / s, w.Vehicles / s, w.Tardiness / s}
}

// Lattice returns an evenly spread set of weight vectors on the simplex
// with the given resolution: all (i, j, k)/n with i+j+k = n. Resolution 4
// yields 15 vectors.
func Lattice(n int) []Weights {
	if n < 1 {
		n = 1
	}
	var out []Weights
	for i := 0; i <= n; i++ {
		for j := 0; j+i <= n; j++ {
			k := n - i - j
			out = append(out, Weights{
				Distance:  float64(i) / float64(n),
				Vehicles:  float64(j) / float64(n),
				Tardiness: float64(k) / float64(n),
			})
		}
	}
	return out
}

// RandomWeights draws k weight vectors uniformly from the simplex.
func RandomWeights(r *rng.Rand, k int) []Weights {
	out := make([]Weights, k)
	for i := range out {
		a, b := r.Float64(), r.Float64()
		if a > b {
			a, b = b, a
		}
		out[i] = Weights{Distance: a, Vehicles: b - a, Tardiness: 1 - b}
	}
	return out
}

// Config parameterizes the multi-start weighted-sum Tabu Search.
type Config struct {
	// Weights to run; each gets an equal share of MaxEvaluations.
	// Defaults to Lattice(4).
	Weights []Weights
	// MaxEvaluations is the total budget across all weight runs.
	MaxEvaluations int
	// NeighborhoodSize per iteration (default 200).
	NeighborhoodSize int
	// TabuTenure (default 20).
	TabuTenure int
	// Seed for reproducibility.
	Seed uint64
}

// Result of a weighted-sum multi-start run.
type Result struct {
	// Front is the non-dominated set over all runs' best solutions.
	Front []*solution.Solution
	// PerWeight records each weight's best solution, aligned with the
	// configured weights.
	PerWeight []*solution.Solution
	// Evaluations actually spent.
	Evaluations int
}

// Run executes one single-objective Tabu Search per weight vector.
func Run(in *vrptw.Instance, cfg Config) (*Result, error) {
	if cfg.Weights == nil {
		cfg.Weights = Lattice(4)
	}
	if cfg.NeighborhoodSize == 0 {
		cfg.NeighborhoodSize = 200
	}
	if cfg.TabuTenure == 0 {
		cfg.TabuTenure = 20
	}
	if cfg.MaxEvaluations < len(cfg.Weights) {
		return nil, fmt.Errorf("wsum: budget %d below one evaluation per weight (%d weights)",
			cfg.MaxEvaluations, len(cfg.Weights))
	}
	r := rng.New(cfg.Seed)
	perBudget := cfg.MaxEvaluations / len(cfg.Weights)

	res := &Result{PerWeight: make([]*solution.Solution, len(cfg.Weights))}
	for i, w := range cfg.Weights {
		best, evals := singleObjectiveTS(in, w.Normalize(), perBudget, cfg, r.Split())
		res.PerWeight[i] = best
		res.Evaluations += evals
	}

	objs := make([]solution.Objectives, len(res.PerWeight))
	for i, s := range res.PerWeight {
		objs[i] = s.Obj
	}
	seen := map[[3]float64]bool{}
	for _, i := range pareto.NondominatedIndices(objs) {
		key := objs[i].Values()
		if seen[key] {
			continue
		}
		seen[key] = true
		res.Front = append(res.Front, res.PerWeight[i])
	}
	return res, nil
}

// scalar computes the weighted-sum fitness of objectives normalized by a
// reference solution's magnitudes (so the three terms are commensurable).
func scalar(o solution.Objectives, w Weights, ref solution.Objectives) float64 {
	norm := func(v, r float64) float64 {
		if r <= 0 {
			return v
		}
		return v / r
	}
	return w.Distance*norm(o.Distance, ref.Distance) +
		w.Vehicles*norm(o.Vehicles, ref.Vehicles) +
		w.Tardiness*norm(o.Tardiness, ref.Distance/10+1)
}

// singleObjectiveTS is a classic best-improvement Tabu Search on the
// scalarized objective, with best-so-far aspiration.
func singleObjectiveTS(in *vrptw.Instance, w Weights, budget int, cfg Config, r *rng.Rand) (*solution.Solution, int) {
	gen := operators.NewGenerator(in, nil)
	tl := tabu.NewList(cfg.TabuTenure)

	cur := construct.I1(in, construct.RandomParams(r))
	ref := cur.Obj
	best := cur
	bestVal := scalar(cur.Obj, w, ref)
	evals := 1

	for evals < budget {
		cs := gen.Candidates(cur, r, cfg.NeighborhoodSize)
		if len(cs) == 0 {
			evals++
			continue
		}
		evals += len(cs)
		chosen := -1
		chosenVal := math.Inf(1)
		for i, c := range cs {
			v := scalar(c.Obj, w, ref)
			if tl.Contains(c.Move.Attribute()) && v >= bestVal {
				continue // tabu without aspiration
			}
			if v < chosenVal {
				chosen, chosenVal = i, v
			}
		}
		if chosen < 0 {
			// Everything tabu: restart from the best solution found.
			cur = best
			continue
		}
		cur = cs[chosen].Move.Apply(in, cur)
		tl.Add(cs[chosen].Move.Attribute())
		if chosenVal < bestVal {
			best, bestVal = cur, chosenVal
		}
	}
	return best, evals
}
