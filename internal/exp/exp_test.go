package exp

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
)

func tinyScale() Scale {
	return Scale{
		Name:              "test",
		Runs:              2,
		InstancesPerClass: 1,
		MaxEvaluations:    800,
		NeighborhoodSize:  40,
		Processors:        []int{3},
		ShrinkN:           40,
	}
}

func TestTablesSpecs(t *testing.T) {
	tables := Tables()
	if len(tables) != 4 {
		t.Fatalf("got %d tables, want 4", len(tables))
	}
	if tables[0].N != 400 || tables[2].N != 600 {
		t.Error("table sizes wrong")
	}
	for _, id := range []string{"I", "II", "III", "IV", "1", "4"} {
		if _, err := TableByID(id); err != nil {
			t.Errorf("TableByID(%q): %v", id, err)
		}
	}
	if _, err := TableByID("V"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestScaleByName(t *testing.T) {
	for _, n := range []string{"paper", "medium", "quick"} {
		s, err := ScaleByName(n)
		if err != nil || s.Runs == 0 {
			t.Errorf("ScaleByName(%q) = %+v, %v", n, s, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestVariants(t *testing.T) {
	s := PaperScale()
	vs := s.variants()
	// sequential + 3 algorithms × 3 processor counts
	if len(vs) != 10 {
		t.Fatalf("got %d variants, want 10", len(vs))
	}
	if vs[0].Alg != core.Sequential || vs[0].Procs != 1 {
		t.Error("first variant must be sequential")
	}
}

func TestIncludeCombinedVariant(t *testing.T) {
	s := tinyScale()
	s.Processors = []int{4}
	s.IncludeCombined = true
	vs := s.variants()
	found := false
	for _, v := range vs {
		if v.Alg == core.Combined && v.Procs == 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("combined variant missing")
	}
	spec, _ := TableByID("I")
	s.Runs = 1
	res, err := RunTable(spec, s, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 { // seq + sync + async + coll + combined
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
}

func TestRunTableTiny(t *testing.T) {
	spec, err := TableByID("I")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTable(spec, tinyScale(), 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // seq + 3 variants at P=3
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Distance <= 0 || r.Runtime <= 0 {
			t.Errorf("%v P=%d: non-positive aggregates %+v", r.Alg, r.Procs, r)
		}
		if r.Vehicles < 1 {
			t.Errorf("%v: vehicles %g < 1", r.Alg, r.Vehicles)
		}
		if r.CovDom < 0 || r.CovDom > 1 || r.CovDomd < 0 || r.CovDomd > 1 {
			t.Errorf("%v: coverage out of range", r.Alg)
		}
	}
	if !math.IsNaN(res.Rows[0].SpeedupPct) {
		t.Error("sequential row must have no speedup")
	}
	for _, r := range res.Rows[1:] {
		if math.IsNaN(r.SpeedupPct) {
			t.Errorf("%v: missing speedup", r.Alg)
		}
	}
	if len(res.TTests) != 3 {
		t.Errorf("got %d t-tests, want 3", len(res.TTests))
	}
	for _, tt := range res.TTests {
		if tt.P < 0 || tt.P > 1 {
			t.Errorf("%v: p-value %g out of range", tt.Alg, tt.P)
		}
	}
}

func TestRunTableDeterministic(t *testing.T) {
	spec, _ := TableByID("I")
	s := tinyScale()
	s.Runs = 1
	a, err := RunTable(spec, s, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTable(spec, s, 11, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		if a.Rows[i].Distance != b.Rows[i].Distance || a.Rows[i].Runtime != b.Rows[i].Runtime {
			t.Fatalf("row %d differs between identical harness runs", i)
		}
	}
}

func TestRenderers(t *testing.T) {
	spec, _ := TableByID("II")
	res, err := RunTable(spec, tinyScale(), 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TABLE II", "Sequential TSMO", "TSMO sync.", "TSMO async.", "TSMO coll.", "3 processors", "t-tests"} {
		if !strings.Contains(out, want) {
			t.Errorf("text render missing %q", want)
		}
	}
	buf.Reset()
	if err := res.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	md := buf.String()
	for _, want := range []string{"### Table II", "| Algorithm |", "| seq", "↔"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown render missing %q", want)
		}
	}
}

func TestRunFigure1(t *testing.T) {
	traj, err := RunFigure1(40, 3, 600, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj.Points) == 0 {
		t.Fatal("empty trajectory")
	}
	var selected, stale bool
	for _, p := range traj.Points {
		if p.Selected {
			selected = true
		}
		if p.Born < p.Iteration-1 {
			stale = true
		}
	}
	if !selected {
		t.Error("no selected points")
	}
	if !stale {
		t.Error("no stale candidates — asynchronous behavior not visible")
	}
	var buf bytes.Buffer
	if err := traj.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "iteration,born,distance") {
		t.Error("CSV header missing")
	}
}

func TestProgressCallback(t *testing.T) {
	spec, _ := TableByID("I")
	s := tinyScale()
	s.Runs = 1
	var lines int
	_, err := RunTable(spec, s, 3, func(string, ...any) { lines++ })
	if err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("no progress lines emitted")
	}
}
