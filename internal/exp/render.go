package exp

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
)

// Render writes the table in a layout mirroring the paper's: one block per
// processor count, columns distance, vehicles, runtime, coverage and
// speedup, followed by the significance tests.
func (t *TableResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "TABLE %s — %s (scale: %s)\n", t.Spec.ID, t.Spec.Label, t.Scale.Name)
	fmt.Fprintf(w, "%-22s %22s %18s %20s %20s %10s\n",
		"Algorithm", "distance", "vehicles", "runtime", "coverage", "speedup")

	writeRow := func(r Row) {
		name := "TSMO " + shortName(r.Alg)
		if r.Alg == core.Sequential {
			name = "Sequential TSMO"
		}
		cov := fmt.Sprintf("%5.2f%% <-> %5.2f%%", r.CovDom*100, r.CovDomd*100)
		speed := "—"
		if !math.IsNaN(r.SpeedupPct) {
			speed = fmt.Sprintf("%+.2f%%", r.SpeedupPct)
		}
		fmt.Fprintf(w, "%-22s %12.2f±%-9.2f %10.2f±%-6.2f %12.2f±%-7.2f %20s %10s\n",
			name, r.Distance, r.DistStd, r.Vehicles, r.VehStd, r.Runtime, r.RunStd, cov, speed)
	}

	// Sequential row first, then per-processor blocks in ascending order.
	for _, r := range t.Rows {
		if r.Alg == core.Sequential {
			writeRow(r)
		}
	}
	for _, p := range t.processorCounts() {
		fmt.Fprintf(w, "%d processors\n", p)
		for _, r := range t.Rows {
			if r.Alg != core.Sequential && r.Procs == p {
				writeRow(r)
			}
		}
	}

	if len(t.TTests) > 0 {
		fmt.Fprintln(w, "paired t-tests vs sequential (distance):")
		for _, tt := range t.TTests {
			sig := ""
			if tt.P < 0.05 {
				sig = "  (significant at 5%)"
			}
			fmt.Fprintf(w, "  %-14s P=%-2d  t=%8.3f  p=%.4f%s\n", shortName(tt.Alg), tt.Procs, tt.T, tt.P, sig)
		}
	}
	return nil
}

func shortName(a core.Algorithm) string {
	switch a {
	case core.Synchronous:
		return "sync."
	case core.Asynchronous:
		return "async."
	case core.Collaborative:
		return "coll."
	case core.Combined:
		return "comb."
	default:
		return a.String()
	}
}

func (t *TableResult) processorCounts() []int {
	seen := map[int]bool{}
	var out []int
	for _, r := range t.Rows {
		if r.Alg == core.Sequential || seen[r.Procs] {
			continue
		}
		seen[r.Procs] = true
		out = append(out, r.Procs)
	}
	sort.Ints(out)
	return out
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table for
// EXPERIMENTS.md.
func (t *TableResult) RenderMarkdown(w io.Writer) error {
	fmt.Fprintf(w, "### Table %s — %s\n\n", t.Spec.ID, t.Spec.Label)
	fmt.Fprintf(w, "Scale `%s`: %d run(s) × %d instance(s)/class, %d evaluations, neighborhood %d.\n\n",
		t.Scale.Name, t.Scale.Runs, t.Scale.InstancesPerClass, t.Scale.MaxEvaluations, t.Scale.NeighborhoodSize)
	fmt.Fprintln(w, "| Algorithm | P | distance | vehicles | runtime [s] | coverage | speedup |")
	fmt.Fprintln(w, "|---|---|---|---|---|---|---|")
	for _, r := range t.Rows {
		speed := "—"
		if !math.IsNaN(r.SpeedupPct) {
			speed = fmt.Sprintf("%+.2f%%", r.SpeedupPct)
		}
		fmt.Fprintf(w, "| %s | %d | %.2f±%.2f | %.2f±%.2f | %.2f±%.2f | %.1f%% ↔ %.1f%% | %s |\n",
			shortName(r.Alg), r.Procs, r.Distance, r.DistStd, r.Vehicles, r.VehStd,
			r.Runtime, r.RunStd, r.CovDom*100, r.CovDomd*100, speed)
	}
	if len(t.TTests) > 0 {
		fmt.Fprintln(w, "\nPaired t-tests vs sequential (distance):")
		fmt.Fprintln(w)
		for _, tt := range t.TTests {
			fmt.Fprintf(w, "- %s P=%d: t=%.3f, p=%.4f\n", shortName(tt.Alg), tt.Procs, tt.T, tt.P)
		}
	}
	fmt.Fprintln(w)
	return nil
}
