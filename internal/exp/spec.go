// Package exp is the experiment harness that regenerates the paper's
// evaluation: Tables I–IV (distance, vehicles, runtime, set coverage and
// speedup of the sequential, synchronous, asynchronous and collaborative
// TSMO at 3, 6 and 12 processors on 400- and 600-city instance sets) and
// Figure 1 (the asynchronous search trajectory). Scales are configurable:
// PaperScale mirrors the paper's setup, QuickScale fits CI machines.
package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/vrptw"
)

// TableSpec identifies one of the paper's result tables.
type TableSpec struct {
	// ID is the paper's table number, "I" through "IV".
	ID string
	// N is the instance size (400 or 600 customers).
	N int
	// Classes are the instance classes pooled in the table.
	Classes []vrptw.Class
	// Label is the paper's caption summary.
	Label string
}

// Tables returns the paper's four table specifications.
func Tables() []TableSpec {
	return []TableSpec{
		{ID: "I", N: 400, Classes: []vrptw.Class{vrptw.C1, vrptw.R1},
			Label: "400 city extended Solomon problems with small time windows (C1, R1)"},
		{ID: "II", N: 400, Classes: []vrptw.Class{vrptw.C2, vrptw.R2},
			Label: "400 city extended Solomon problems with large time windows (C2, R2)"},
		{ID: "III", N: 600, Classes: []vrptw.Class{vrptw.C1, vrptw.R1},
			Label: "600 city extended Solomon problems with small time windows (C1, R1)"},
		{ID: "IV", N: 600, Classes: []vrptw.Class{vrptw.C2, vrptw.R2},
			Label: "600 city extended Solomon problems with large time windows (C2, R2)"},
	}
}

// TableByID returns the spec with the given ID ("I".."IV" or "1".."4").
func TableByID(id string) (TableSpec, error) {
	alias := map[string]string{"1": "I", "2": "II", "3": "III", "4": "IV"}
	if a, ok := alias[id]; ok {
		id = a
	}
	for _, t := range Tables() {
		if t.ID == id {
			return t, nil
		}
	}
	return TableSpec{}, fmt.Errorf("exp: unknown table %q", id)
}

// Scale controls how much of the paper's experimental effort is spent.
type Scale struct {
	// Name tags the scale in reports.
	Name string
	// Runs per instance (paper: 30).
	Runs int
	// InstancesPerClass generated per class (the Homberger set has 10
	// per class; the paper pools them).
	InstancesPerClass int
	// MaxEvaluations per run (paper: 100,000).
	MaxEvaluations int
	// NeighborhoodSize (paper: 200).
	NeighborhoodSize int
	// Processors evaluated for each parallel variant (paper: 3, 6, 12).
	Processors []int
	// ShrinkN optionally overrides the table's instance size (0 keeps
	// it); used by the quick scale to stay laptop-friendly.
	ShrinkN int
	// IncludeCombined adds the paper's future-work variant (islands of
	// asynchronous masters that collaborate) to every processor block
	// with at least 4 processes.
	IncludeCombined bool
}

// PaperScale reproduces the paper's setup (expensive: hours of real time).
func PaperScale() Scale {
	return Scale{
		Name:              "paper",
		Runs:              30,
		InstancesPerClass: 10,
		MaxEvaluations:    100000,
		NeighborhoodSize:  200,
		Processors:        []int{3, 6, 12},
	}
}

// MediumScale keeps the full instance sizes and processor counts but
// reduces repetition; minutes of real time per table.
func MediumScale() Scale {
	return Scale{
		Name:              "medium",
		Runs:              15,
		InstancesPerClass: 2,
		MaxEvaluations:    30000,
		NeighborhoodSize:  200,
		Processors:        []int{3, 6, 12},
	}
}

// QuickScale is a smoke-test scale for CI: tiny budgets, shrunken
// instances.
func QuickScale() Scale {
	return Scale{
		Name:              "quick",
		Runs:              3,
		InstancesPerClass: 1,
		MaxEvaluations:    4000,
		NeighborhoodSize:  100,
		Processors:        []int{3},
		ShrinkN:           120,
	}
}

// ScaleByName resolves "paper", "medium" or "quick".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "paper":
		return PaperScale(), nil
	case "medium":
		return MediumScale(), nil
	case "quick":
		return QuickScale(), nil
	}
	return Scale{}, fmt.Errorf("exp: unknown scale %q (want paper, medium or quick)", name)
}

// variant is one algorithm row of a table.
type variant struct {
	Alg   core.Algorithm
	Procs int
}

// variants returns the rows of a table at this scale: sequential plus each
// parallel algorithm at each processor count, in the paper's order.
func (s Scale) variants() []variant {
	out := []variant{{core.Sequential, 1}}
	for _, p := range s.Processors {
		out = append(out,
			variant{core.Synchronous, p},
			variant{core.Asynchronous, p},
			variant{core.Collaborative, p},
		)
		if s.IncludeCombined && p >= 4 {
			out = append(out, variant{core.Combined, p})
		}
	}
	return out
}
