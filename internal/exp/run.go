package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/deme"
	"repro/internal/metrics"
	"repro/internal/solution"
	"repro/internal/stats"
	"repro/internal/vrptw"
)

// Row is one algorithm line of a reproduced table, mirroring the paper's
// columns: distance and vehicles (mean ± std of the per-run aggregates over
// the instance pool), runtime (mean ± std of the per-instance virtual
// runtime), the set coverage metric in both directions, and the speedup
// percentage (T_seq/T_par − 1)·100.
type Row struct {
	Alg        core.Algorithm
	Procs      int
	Distance   float64
	DistStd    float64
	Vehicles   float64
	VehStd     float64
	Runtime    float64
	RunStd     float64
	CovDom     float64 // fraction of others' solutions this row dominates
	CovDomd    float64 // fraction of this row's solutions others dominate
	SpeedupPct float64 // NaN for the sequential row
}

// TTestRow is the paper's §IV significance check: a paired t-test of a
// variant's per-run distances against the sequential algorithm's.
type TTestRow struct {
	Alg   core.Algorithm
	Procs int
	T     float64
	P     float64
}

// TableResult is one reproduced table.
type TableResult struct {
	Spec   TableSpec
	Scale  Scale
	Rows   []Row
	TTests []TTestRow
}

// runRecord is the outcome of one (variant, instance, run) cell.
type runRecord struct {
	front    []solution.Objectives // feasible front
	bestDist float64
	minVeh   float64
	elapsed  float64
}

// RunTable reproduces one of the paper's tables at the given scale. logf,
// when non-nil, receives progress lines.
func RunTable(spec TableSpec, scale Scale, seed uint64, logf func(format string, args ...any)) (*TableResult, error) {
	say := func(format string, args ...any) {
		if logf != nil {
			logf(format, args...)
		}
	}
	n := spec.N
	if scale.ShrinkN > 0 {
		n = scale.ShrinkN
	}
	var instances []*vrptw.Instance
	for _, class := range spec.Classes {
		for i := 0; i < scale.InstancesPerClass; i++ {
			in, err := vrptw.Generate(vrptw.GenConfig{Class: class, N: n, Seed: seed + uint64(i)})
			if err != nil {
				return nil, fmt.Errorf("exp: generating %v instance: %w", class, err)
			}
			instances = append(instances, in)
		}
	}

	vars := scale.variants()
	// records[v][inst][run]
	records := make([][][]runRecord, len(vars))
	for vi, v := range vars {
		records[vi] = make([][]runRecord, len(instances))
		for ii, in := range instances {
			records[vi][ii] = make([]runRecord, scale.Runs)
			for run := 0; run < scale.Runs; run++ {
				rec, err := runOnce(v, in, scale, seed, ii, run)
				if err != nil {
					return nil, err
				}
				records[vi][ii][run] = rec
			}
			say("table %s: %s P=%d instance %s done", spec.ID, v.Alg, v.Procs, in.Name)
		}
	}

	res := &TableResult{Spec: spec, Scale: scale}
	seqIdx := 0
	seqDist := perRunAggregates(records[seqIdx], func(r runRecord) float64 { return r.bestDist }, true)
	seqRuntime := stats.Mean(flatten(records[seqIdx], func(r runRecord) float64 { return r.elapsed }))

	for vi, v := range vars {
		dist := perRunAggregates(records[vi], func(r runRecord) float64 { return r.bestDist }, true)
		veh := perRunAggregates(records[vi], func(r runRecord) float64 { return r.minVeh }, true)
		rt := flatten(records[vi], func(r runRecord) float64 { return r.elapsed })
		row := Row{Alg: v.Alg, Procs: v.Procs}
		row.Distance, row.DistStd = stats.MeanStd(dist)
		row.Vehicles, row.VehStd = stats.MeanStd(veh)
		row.Runtime, row.RunStd = stats.MeanStd(rt)
		if v.Alg == core.Sequential {
			row.SpeedupPct = math.NaN()
		} else {
			row.SpeedupPct = (seqRuntime/row.Runtime - 1) * 100
		}
		row.CovDom, row.CovDomd = coverage(vi, vars, records, instances)
		res.Rows = append(res.Rows, row)

		if v.Alg != core.Sequential {
			tt, err := stats.PairedTTest(dist, seqDist)
			if err == nil {
				res.TTests = append(res.TTests, TTestRow{Alg: v.Alg, Procs: v.Procs, T: tt.T, P: tt.P})
			}
		}
	}
	say("table %s complete", spec.ID)
	return res, nil
}

// runOnce executes one (variant, instance, run) cell on the simulated
// Origin 3800. Algorithm seeds pair up across variants (same instance and
// run index), and the machine noise seed varies per cell's (instance, run)
// so placement effects average out like repeated submissions on a shared
// machine.
func runOnce(v variant, in *vrptw.Instance, scale Scale, seed uint64, inst, run int) (runRecord, error) {
	cfg := core.DefaultConfig()
	cfg.MaxEvaluations = scale.MaxEvaluations
	cfg.NeighborhoodSize = scale.NeighborhoodSize
	cfg.Processors = v.Procs
	cfg.Seed = seed*1000003 + uint64(inst)*1009 + uint64(run)
	m := deme.Origin3800()
	m.Seed = cfg.Seed ^ 0x9e3779b97f4a7c15
	res, err := core.Run(v.Alg, in, cfg, deme.NewSim(m))
	if err != nil {
		return runRecord{}, fmt.Errorf("exp: %v on %s: %w", v.Alg, in.Name, err)
	}
	rec := runRecord{
		front:   metrics.FeasibleObjs(res.Front),
		elapsed: res.Elapsed,
	}
	rec.bestDist = res.BestDistance()
	rec.minVeh = res.MinVehicles()
	if math.IsInf(rec.bestDist, 1) {
		// No feasible solution survived in the archive (rare); fall
		// back to the least-tardy solution so aggregates stay finite.
		best := math.Inf(1)
		var bd, bv float64
		for _, s := range res.Front {
			if s.Obj.Tardiness < best {
				best = s.Obj.Tardiness
				bd, bv = s.Obj.Distance, s.Obj.Vehicles
			}
		}
		rec.bestDist, rec.minVeh = bd, bv
	}
	return rec, nil
}

// perRunAggregates reduces records to one value per run index: the sum
// (sum=true) or mean over the instance pool — the paper reports pooled
// values over each class set.
func perRunAggregates(rec [][]runRecord, f func(runRecord) float64, sum bool) []float64 {
	if len(rec) == 0 {
		return nil
	}
	runs := len(rec[0])
	out := make([]float64, runs)
	for r := 0; r < runs; r++ {
		for i := range rec {
			out[r] += f(rec[i][r])
		}
		if !sum {
			out[r] /= float64(len(rec))
		}
	}
	return out
}

func flatten(rec [][]runRecord, f func(runRecord) float64) []float64 {
	var out []float64
	for i := range rec {
		for r := range rec[i] {
			out = append(out, f(rec[i][r]))
		}
	}
	return out
}

// coverage computes the paper's set coverage presentation for variant vi:
// every run of a problem is compared against every run of each other
// algorithm in the same processor group (plus the sequential baseline) on
// the same problem, and the ratios are averaged.
func coverage(vi int, vars []variant, records [][][]runRecord, instances []*vrptw.Instance) (dom, domd float64) {
	v := vars[vi]
	var others []int
	for oi, o := range vars {
		if oi == vi {
			continue
		}
		if o.Procs == v.Procs || o.Alg == core.Sequential || v.Alg == core.Sequential {
			others = append(others, oi)
		}
	}
	if len(others) == 0 {
		return 0, 0
	}
	var sumDom, sumDomd float64
	var count int
	for _, oi := range others {
		for ii := range instances {
			for _, mine := range records[vi][ii] {
				for _, theirs := range records[oi][ii] {
					sumDom += metrics.Coverage(mine.front, theirs.front)
					sumDomd += metrics.Coverage(theirs.front, mine.front)
					count++
				}
			}
		}
	}
	return sumDom / float64(count), sumDomd / float64(count)
}

// RunFigure1 reproduces the paper's Figure 1: the trajectory of the
// asynchronous TSMO in objective space, with candidates tagged by the
// iteration their neighborhood was generated in and the selected current
// solutions marked.
func RunFigure1(n int, procs int, evals int, seed uint64) (*core.Trajectory, error) {
	in, err := vrptw.Generate(vrptw.GenConfig{Class: vrptw.R1, N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.MaxEvaluations = evals
	cfg.NeighborhoodSize = 50
	cfg.Processors = procs
	cfg.Seed = seed
	cfg.RecordTrajectory = true
	res, err := core.Run(core.Asynchronous, in, cfg, deme.NewSim(deme.Origin3800()))
	if err != nil {
		return nil, err
	}
	return res.Trajectory, nil
}
