package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/deme"
	"repro/internal/operators"
	"repro/internal/stats"
	"repro/internal/vrptw"
)

// EqualTimeRow is one line of the equal-time comparison: with the runtime
// fixed instead of the evaluation budget, how many evaluations does each
// variant fit in, and what quality does it reach? This is the comparison
// the paper's §IV proposes ("Given an equal amount of time, it would be
// possible for the asynchronous Tabu Search to do more evaluations").
type EqualTimeRow struct {
	Alg      core.Algorithm
	Procs    int
	Evals    float64 // mean evaluations completed
	EvalsStd float64
	Dist     float64 // mean best feasible distance
	DistStd  float64
}

// EqualTimeResult is the full equal-time comparison.
type EqualTimeResult struct {
	N       int
	Seconds float64
	Runs    int
	Rows    []EqualTimeRow
}

// RunEqualTime runs every variant for a fixed virtual-time budget on a
// generated R1 instance of size n.
func RunEqualTime(n int, seconds float64, procs []int, runs int, seed uint64) (*EqualTimeResult, error) {
	in, err := vrptw.Generate(vrptw.GenConfig{Class: vrptw.R1, N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	vars := []variant{{core.Sequential, 1}}
	for _, p := range procs {
		vars = append(vars,
			variant{core.Synchronous, p},
			variant{core.Asynchronous, p},
			variant{core.Collaborative, p},
		)
	}
	res := &EqualTimeResult{N: n, Seconds: seconds, Runs: runs}
	for _, v := range vars {
		evals := make([]float64, runs)
		dists := make([]float64, runs)
		for r := 0; r < runs; r++ {
			cfg := core.DefaultConfig()
			cfg.MaxEvaluations = 1 << 30
			cfg.MaxSeconds = seconds
			cfg.Processors = v.Procs
			cfg.Seed = seed + uint64(r)
			m := deme.Origin3800()
			m.Seed = seed*31 + uint64(r)
			out, err := core.Run(v.Alg, in, cfg, deme.NewSim(m))
			if err != nil {
				return nil, err
			}
			evals[r] = float64(out.Evaluations)
			dists[r] = out.BestDistance()
		}
		row := EqualTimeRow{Alg: v.Alg, Procs: v.Procs}
		row.Evals, row.EvalsStd = stats.MeanStd(evals)
		row.Dist, row.DistStd = stats.MeanStd(dists)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the equal-time comparison as text.
func (r *EqualTimeResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "EQUAL-TIME COMPARISON — %d-city R1, %.0f virtual seconds, %d runs\n",
		r.N, r.Seconds, r.Runs)
	fmt.Fprintf(w, "%-22s %20s %20s\n", "Algorithm", "evaluations", "best distance")
	for _, row := range r.Rows {
		name := fmt.Sprintf("%s P=%d", shortName(row.Alg), row.Procs)
		if row.Alg == core.Sequential {
			name = "sequential"
		}
		fmt.Fprintf(w, "%-22s %12.0f±%-7.0f %12.2f±%-7.2f\n",
			name, row.Evals, row.EvalsStd, row.Dist, row.DistStd)
	}
	return nil
}

// OperatorRow is one line of the operator ablation: quality reached by the
// sequential TSMO restricted to a single operator, versus the paper's
// five-operator mix and the extended set.
type OperatorRow struct {
	Name    string
	Dist    float64
	DistStd float64
	Veh     float64
	Fails   int // runs without any feasible solution
}

// OperatorAblation compares neighborhoods built from different operator
// sets on a generated R1 instance.
type OperatorAblation struct {
	N, Evals, Runs int
	Rows           []OperatorRow
}

// RunOperatorAblation measures each operator set's end-of-run quality.
func RunOperatorAblation(n, evals, runs int, seed uint64) (*OperatorAblation, error) {
	in, err := vrptw.Generate(vrptw.GenConfig{Class: vrptw.R1, N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	sets := []struct {
		name string
		ops  []operators.Operator
	}{
		{"paper-five", nil},
		{"extended", operators.Extended()},
	}
	for _, op := range operators.All() {
		sets = append(sets, struct {
			name string
			ops  []operators.Operator
		}{op.Name() + "-only", []operators.Operator{op}})
	}

	res := &OperatorAblation{N: n, Evals: evals, Runs: runs}
	for _, set := range sets {
		dists := make([]float64, 0, runs)
		var vehSum float64
		fails := 0
		for r := 0; r < runs; r++ {
			cfg := core.DefaultConfig()
			cfg.MaxEvaluations = evals
			cfg.NeighborhoodSize = 100
			cfg.Operators = set.ops
			cfg.Seed = seed + uint64(r)
			out, err := core.Run(core.Sequential, in, cfg, deme.NewSim(deme.Ideal()))
			if err != nil {
				return nil, err
			}
			d := out.BestDistance()
			v := out.MinVehicles()
			if len(out.FeasibleFront()) == 0 {
				fails++
				continue
			}
			dists = append(dists, d)
			vehSum += v
		}
		row := OperatorRow{Name: set.name, Fails: fails}
		if len(dists) > 0 {
			row.Dist, row.DistStd = stats.MeanStd(dists)
			row.Veh = vehSum / float64(len(dists))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the ablation as text.
func (a *OperatorAblation) Render(w io.Writer) error {
	fmt.Fprintf(w, "OPERATOR ABLATION — %d-city R1, %d evaluations, %d runs (sequential TSMO)\n",
		a.N, a.Evals, a.Runs)
	fmt.Fprintf(w, "%-18s %20s %10s %8s\n", "Operator set", "best distance", "vehicles", "no-feas")
	for _, row := range a.Rows {
		fmt.Fprintf(w, "%-18s %12.2f±%-7.2f %10.2f %8d\n",
			row.Name, row.Dist, row.DistStd, row.Veh, row.Fails)
	}
	return nil
}
