package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/deme"
	"repro/internal/metrics"
	"repro/internal/operators"
	"repro/internal/solution"
	"repro/internal/stats"
	"repro/internal/vrptw"
)

// EqualTimeRow is one line of the equal-time comparison: with the runtime
// fixed instead of the evaluation budget, how many evaluations does each
// variant fit in, and what quality does it reach? This is the comparison
// the paper's §IV proposes ("Given an equal amount of time, it would be
// possible for the asynchronous Tabu Search to do more evaluations").
type EqualTimeRow struct {
	Alg      core.Algorithm
	Procs    int
	Evals    float64 // mean evaluations completed
	EvalsStd float64
	Dist     float64 // mean best feasible distance
	DistStd  float64
}

// EqualTimeResult is the full equal-time comparison.
type EqualTimeResult struct {
	N       int
	Seconds float64
	Runs    int
	Rows    []EqualTimeRow
}

// RunEqualTime runs every variant for a fixed virtual-time budget on a
// generated R1 instance of size n.
func RunEqualTime(n int, seconds float64, procs []int, runs int, seed uint64) (*EqualTimeResult, error) {
	in, err := vrptw.Generate(vrptw.GenConfig{Class: vrptw.R1, N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	vars := []variant{{core.Sequential, 1}}
	for _, p := range procs {
		vars = append(vars,
			variant{core.Synchronous, p},
			variant{core.Asynchronous, p},
			variant{core.Collaborative, p},
		)
	}
	res := &EqualTimeResult{N: n, Seconds: seconds, Runs: runs}
	for _, v := range vars {
		evals := make([]float64, runs)
		dists := make([]float64, runs)
		for r := 0; r < runs; r++ {
			cfg := core.DefaultConfig()
			cfg.MaxEvaluations = 1 << 30
			cfg.MaxSeconds = seconds
			cfg.Processors = v.Procs
			cfg.Seed = seed + uint64(r)
			m := deme.Origin3800()
			m.Seed = seed*31 + uint64(r)
			out, err := core.Run(v.Alg, in, cfg, deme.NewSim(m))
			if err != nil {
				return nil, err
			}
			evals[r] = float64(out.Evaluations)
			dists[r] = out.BestDistance()
		}
		row := EqualTimeRow{Alg: v.Alg, Procs: v.Procs}
		row.Evals, row.EvalsStd = stats.MeanStd(evals)
		row.Dist, row.DistStd = stats.MeanStd(dists)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the equal-time comparison as text.
func (r *EqualTimeResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "EQUAL-TIME COMPARISON — %d-city R1, %.0f virtual seconds, %d runs\n",
		r.N, r.Seconds, r.Runs)
	fmt.Fprintf(w, "%-22s %20s %20s\n", "Algorithm", "evaluations", "best distance")
	for _, row := range r.Rows {
		name := fmt.Sprintf("%s P=%d", shortName(row.Alg), row.Procs)
		if row.Alg == core.Sequential {
			name = "sequential"
		}
		fmt.Fprintf(w, "%-22s %12.0f±%-7.0f %12.2f±%-7.2f\n",
			name, row.Evals, row.EvalsStd, row.Dist, row.DistStd)
	}
	return nil
}

// OperatorRow is one line of the operator ablation: quality reached by the
// sequential TSMO restricted to a single operator, versus the paper's
// five-operator mix and the extended set.
type OperatorRow struct {
	Name    string
	Dist    float64
	DistStd float64
	Veh     float64
	Fails   int // runs without any feasible solution
}

// OperatorAblation compares neighborhoods built from different operator
// sets on a generated R1 instance.
type OperatorAblation struct {
	N, Evals, Runs int
	Rows           []OperatorRow
}

// RunOperatorAblation measures each operator set's end-of-run quality.
func RunOperatorAblation(n, evals, runs int, seed uint64) (*OperatorAblation, error) {
	in, err := vrptw.Generate(vrptw.GenConfig{Class: vrptw.R1, N: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	sets := []struct {
		name string
		ops  []operators.Operator
	}{
		{"paper-five", nil},
		{"extended", operators.Extended()},
	}
	for _, op := range operators.All() {
		sets = append(sets, struct {
			name string
			ops  []operators.Operator
		}{op.Name() + "-only", []operators.Operator{op}})
	}

	res := &OperatorAblation{N: n, Evals: evals, Runs: runs}
	for _, set := range sets {
		dists := make([]float64, 0, runs)
		var vehSum float64
		fails := 0
		for r := 0; r < runs; r++ {
			cfg := core.DefaultConfig()
			cfg.MaxEvaluations = evals
			cfg.NeighborhoodSize = 100
			cfg.Operators = set.ops
			cfg.Seed = seed + uint64(r)
			out, err := core.Run(core.Sequential, in, cfg, deme.NewSim(deme.Ideal()))
			if err != nil {
				return nil, err
			}
			d := out.BestDistance()
			v := out.MinVehicles()
			if len(out.FeasibleFront()) == 0 {
				fails++
				continue
			}
			dists = append(dists, d)
			vehSum += v
		}
		row := OperatorRow{Name: set.name, Fails: fails}
		if len(dists) > 0 {
			row.Dist, row.DistStd = stats.MeanStd(dists)
			row.Veh = vehSum / float64(len(dists))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// GranularParityRow is one line of the granular quality-parity check: on
// one instance, the hypervolume (and best distance) reached by the full
// neighborhood versus the granular one at an equal evaluation budget.
type GranularParityRow struct {
	N         int
	HVFull    float64
	HVFullStd float64
	HVGran    float64
	HVGranStd float64
	Ratio     float64 // mean granular HV / mean full HV
	// Merged-front hypervolume: HV of the union of all runs' feasible
	// fronts per configuration. Per-run HV is dominated by which vehicle
	// count a run happens to reach, so its mean is noisy; the merged front
	// washes that out and is the statistic the parity gate reads.
	HVMergedFull float64
	HVMergedGran float64
	MergedRatio  float64
	DistFull     float64
	DistGran     float64
}

// GranularParity compares the full and granular (k-nearest) neighborhoods
// at equal budget. With the sequential searcher on the deterministic
// simulator, an equal evaluation budget is an equal virtual-time budget:
// both configurations charge the same model cost per evaluation.
type GranularParity struct {
	Evals, Runs, K int
	Rows           []GranularParityRow
}

// RunGranularParity runs the sequential TSMO with and without granular
// neighborhoods on generated R1 instances and reports the hypervolume of
// the final feasible fronts under a fixed a-priori reference point scaled
// with the instance size. Deriving the reference from the observed fronts
// would couple the indicator to the configurations under comparison (and
// to the run count); a fixed reference keeps each run's hypervolume an
// independent, reproducible measurement.
func RunGranularParity(sizes []int, evals, runs, k int, seed uint64) (*GranularParity, error) {
	res := &GranularParity{Evals: evals, Runs: runs, K: k}
	for _, n := range sizes {
		in, err := vrptw.Generate(vrptw.GenConfig{Class: vrptw.R1, N: n, Seed: seed})
		if err != nil {
			return nil, err
		}
		fronts := map[int][][]solution.Objectives{}
		dist := map[int][]float64{}
		for _, gk := range []int{0, k} {
			for r := 0; r < runs; r++ {
				cfg := core.DefaultConfig()
				cfg.MaxEvaluations = evals
				cfg.GranularK = gk
				cfg.Seed = seed + uint64(r)
				out, err := core.Run(core.Sequential, in, cfg, deme.NewSim(deme.Ideal()))
				if err != nil {
					return nil, err
				}
				fronts[gk] = append(fronts[gk], metrics.FeasibleObjs(out.FeasibleFront()))
				dist[gk] = append(dist[gk], out.BestDistance())
			}
		}
		// A-priori reference point, scaled with the instance size: about
		// twice the typical best distance on generated R1 instances, a
		// vehicle count no reasonable front exceeds, and a token tardiness
		// bound (feasible fronts sit at tardiness zero).
		ref := solution.Objectives{
			Distance:  40 * float64(n),
			Vehicles:  float64(n)/4 + 10,
			Tardiness: 100,
		}

		hv := func(gk int) (mean, std float64) {
			vals := make([]float64, runs)
			for r, f := range fronts[gk] {
				vals[r] = metrics.Hypervolume(f, ref)
			}
			return stats.MeanStd(vals)
		}
		merged := func(gk int) float64 {
			var all []solution.Objectives
			for _, f := range fronts[gk] {
				all = append(all, f...)
			}
			return metrics.Hypervolume(all, ref)
		}
		row := GranularParityRow{N: n}
		row.HVFull, row.HVFullStd = hv(0)
		row.HVGran, row.HVGranStd = hv(k)
		if row.HVFull > 0 {
			row.Ratio = row.HVGran / row.HVFull
		}
		row.HVMergedFull = merged(0)
		row.HVMergedGran = merged(k)
		if row.HVMergedFull > 0 {
			row.MergedRatio = row.HVMergedGran / row.HVMergedFull
		}
		row.DistFull, _ = stats.MeanStd(dist[0])
		row.DistGran, _ = stats.MeanStd(dist[k])
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render writes the parity comparison as text.
func (g *GranularParity) Render(w io.Writer) error {
	fmt.Fprintf(w, "GRANULAR QUALITY PARITY — R1, %d evaluations, %d runs, k=%d (sequential TSMO)\n",
		g.Evals, g.Runs, g.K)
	fmt.Fprintf(w, "%-6s %22s %22s %8s %10s %10s %8s %11s %11s\n",
		"N", "HV full", "HV granular", "ratio", "HVm full", "HVm gran", "m-ratio", "dist full", "dist gran")
	for _, row := range g.Rows {
		fmt.Fprintf(w, "%-6d %14.3g±%-7.2g %14.3g±%-7.2g %8.4f %10.3g %10.3g %8.4f %11.2f %11.2f\n",
			row.N, row.HVFull, row.HVFullStd, row.HVGran, row.HVGranStd, row.Ratio,
			row.HVMergedFull, row.HVMergedGran, row.MergedRatio,
			row.DistFull, row.DistGran)
	}
	return nil
}

// Render writes the ablation as text.
func (a *OperatorAblation) Render(w io.Writer) error {
	fmt.Fprintf(w, "OPERATOR ABLATION — %d-city R1, %d evaluations, %d runs (sequential TSMO)\n",
		a.N, a.Evals, a.Runs)
	fmt.Fprintf(w, "%-18s %20s %10s %8s\n", "Operator set", "best distance", "vehicles", "no-feas")
	for _, row := range a.Rows {
		fmt.Fprintf(w, "%-18s %12.2f±%-7.2f %10.2f %8d\n",
			row.Name, row.Dist, row.DistStd, row.Veh, row.Fails)
	}
	return nil
}
