package exp

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRunEqualTime(t *testing.T) {
	res, err := RunEqualTime(50, 12, []int{3}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 { // seq + 3 variants at P=3
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	var seqEvals, asyEvals float64
	for _, r := range res.Rows {
		if r.Evals <= 0 {
			t.Errorf("%v: no evaluations", r.Alg)
		}
		switch r.Alg {
		case core.Sequential:
			seqEvals = r.Evals
		case core.Asynchronous:
			asyEvals = r.Evals
		}
	}
	// The paper's remark: equal time lets async do more evaluations.
	if asyEvals <= seqEvals {
		t.Errorf("async evals %.0f <= sequential %.0f at equal time", asyEvals, seqEvals)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "EQUAL-TIME") {
		t.Error("render missing header")
	}
}

func TestRunOperatorAblation(t *testing.T) {
	res, err := RunOperatorAblation(30, 800, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 { // paper-five, extended, 5 singles
		t.Fatalf("got %d rows, want 7", len(res.Rows))
	}
	names := map[string]bool{}
	for _, r := range res.Rows {
		names[r.Name] = true
		if r.Fails < 0 || r.Fails > 2 {
			t.Errorf("%s: fails %d out of range", r.Name, r.Fails)
		}
	}
	for _, want := range []string{"paper-five", "extended", "relocate-only", "2-opt-only"} {
		if !names[want] {
			t.Errorf("missing row %q (have %v)", want, names)
		}
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "OPERATOR ABLATION") {
		t.Error("render missing header")
	}
}
