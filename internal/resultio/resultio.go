// Package resultio defines the JSON result-file format shared by the
// command-line tools: cmd/tsmo writes fronts, cmd/coverage compares them.
package resultio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/solution"
)

// SolutionRecord is one front member.
type SolutionRecord struct {
	Distance  float64 `json:"distance"`
	Vehicles  float64 `json:"vehicles"`
	Tardiness float64 `json:"tardiness"`
	Routes    [][]int `json:"routes,omitempty"`
}

// FrontFile is a persisted run result.
type FrontFile struct {
	Instance    string           `json:"instance"`
	Algorithm   string           `json:"algorithm"`
	Processors  int              `json:"processors"`
	Evaluations int              `json:"evaluations"`
	Elapsed     float64          `json:"elapsed_seconds"`
	Solutions   []SolutionRecord `json:"solutions"`
}

// FromResult converts a run result into the persisted form. withRoutes
// controls whether full routes are stored (large for big instances).
func FromResult(instance string, res *core.Result, withRoutes bool) *FrontFile {
	f := &FrontFile{
		Instance:    instance,
		Algorithm:   res.Algorithm.String(),
		Processors:  res.Processors,
		Evaluations: res.Evaluations,
		Elapsed:     res.Elapsed,
	}
	for _, s := range res.Front {
		rec := SolutionRecord{
			Distance:  s.Obj.Distance,
			Vehicles:  s.Obj.Vehicles,
			Tardiness: s.Obj.Tardiness,
		}
		if withRoutes {
			rec.Routes = s.Routes
		}
		f.Solutions = append(f.Solutions, rec)
	}
	return f
}

// Objectives returns the stored objective vectors; feasibleOnly drops
// time-window violators.
func (f *FrontFile) Objectives(feasibleOnly bool) []solution.Objectives {
	var out []solution.Objectives
	for _, s := range f.Solutions {
		o := solution.Objectives{Distance: s.Distance, Vehicles: s.Vehicles, Tardiness: s.Tardiness}
		if feasibleOnly && !o.Feasible() {
			continue
		}
		out = append(out, o)
	}
	return out
}

// Write encodes the file as indented JSON.
func Write(w io.Writer, f *FrontFile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Read decodes a result file.
func Read(r io.Reader) (*FrontFile, error) {
	var f FrontFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("resultio: decoding result file: %w", err)
	}
	return &f, nil
}
