package resultio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/solution"
)

func sampleResult() *core.Result {
	return &core.Result{
		Algorithm:   core.Asynchronous,
		Processors:  3,
		Evaluations: 1000,
		Elapsed:     12.5,
		Front: []*solution.Solution{
			{Obj: solution.Objectives{Distance: 100, Vehicles: 5, Tardiness: 0}, Routes: [][]int{{1, 2}, {3}}},
			{Obj: solution.Objectives{Distance: 90, Vehicles: 6, Tardiness: 2}, Routes: [][]int{{1}, {2}, {3}}},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	f := FromResult("R1-test", sampleResult(), true)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Instance != "R1-test" || back.Algorithm != "asynchronous" || back.Processors != 3 {
		t.Errorf("header mismatch: %+v", back)
	}
	if len(back.Solutions) != 2 {
		t.Fatalf("got %d solutions, want 2", len(back.Solutions))
	}
	if back.Solutions[0].Routes == nil {
		t.Error("routes not persisted")
	}
	if back.Elapsed != 12.5 || back.Evaluations != 1000 {
		t.Error("run metadata lost")
	}
}

func TestWithoutRoutes(t *testing.T) {
	f := FromResult("x", sampleResult(), false)
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "routes") {
		t.Error("routes serialized despite withRoutes=false")
	}
}

func TestObjectivesFiltering(t *testing.T) {
	f := FromResult("x", sampleResult(), false)
	if got := len(f.Objectives(false)); got != 2 {
		t.Errorf("all objectives: %d, want 2", got)
	}
	feas := f.Objectives(true)
	if len(feas) != 1 || feas[0].Distance != 100 {
		t.Errorf("feasible objectives wrong: %v", feas)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}
