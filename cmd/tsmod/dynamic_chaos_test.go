package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dynamic"
	"repro/internal/resultio"
	"repro/internal/service"
)

func patchMutations(t *testing.T, base, id string, epoch int, muts []dynamic.Mutation) *http.Response {
	t.Helper()
	body, err := json.Marshal(service.MutateRequest{Epoch: epoch, Mutations: muts})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPatch, base+"/v1/jobs/"+id+"/instance", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestKill9MutationReplay is the dynamic chaos acceptance test. It kills
// the daemon with SIGKILL at the two windows the exactly-once contract
// must survive:
//
//  1. after a mutation is journaled but before the job has any
//     checkpoint (the batch must be re-primed at its epoch on recovery
//     and applied exactly once by the restarted run), and
//  2. after the mutation's patched checkpoint reached disk (the batch
//     must be folded into the recovered instance, never re-applied).
//
// The recovered job's final front must be bit-identical to an
// uninterrupted reference run of the same spec with the same mutation at
// the same epoch — a duplicated or dropped application diverges, because
// cancel_customer renumbers every later site.
func TestKill9MutationReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	dataDir := t.TempDir()
	addr := freePort(t)
	base := "http://" + addr
	cmd := startDaemon(t, addr, dataDir)

	blockerSpec := service.JobSpec{
		Instance:       service.InstanceSpec{Class: "R1", N: 40, Seed: 3},
		MaxEvaluations: 1_000_000,
		Seed:           5,
	}
	targetSpec := service.JobSpec{
		Instance:       service.InstanceSpec{Class: "R1", N: 40, Seed: 3},
		Algorithm:      "asynchronous",
		Processors:     3,
		MaxEvaluations: 400_000,
		Seed:           7,
	}
	const epoch = 2
	muts := []dynamic.Mutation{
		{Version: dynamic.Version, Op: dynamic.CancelCustomer, Customer: 5},
		{Version: dynamic.Version, Op: dynamic.UpdateDemand, Customer: 3, Demand: 5},
	}

	blocker := submitSpec(t, base, blockerSpec) // occupies the single worker
	target := submitSpec(t, base, targetSpec)   // waits in the queue

	// WAL the mutation while the target is still queued: a 200 means the
	// mutate record is fsynced, and the target has no checkpoint yet.
	resp := patchMutations(t, base, target.ID, epoch, muts)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH: %s", resp.Status)
	}

	// Kill window 1: mutation journaled, no checkpoint anywhere for the
	// target. Recovery must re-prime the batch at its epoch.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // killed: non-zero by design

	cmd2 := startDaemon(t, addr, dataDir)
	// The blocker requeues first (submission order) and takes the worker
	// again; cancel it so the target runs.
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+blocker.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	} else {
		t.Fatal(err)
	}

	// Kill window 2: wait until a checkpoint at or past the mutation
	// epoch is durably on disk — by the halt-barrier invariant it only
	// ever exists in its patched (mutation-applied) form.
	ckptPath := filepath.Join(dataDir, "jobs", target.ID, "ckpt.json")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if data, err := os.ReadFile(ckptPath); err == nil {
			if ck, err := core.DecodeCheckpoint(data); err == nil && ck.Barrier >= epoch {
				break
			}
		}
		st := getJSON[service.Status](t, base+"/v1/jobs/"+target.ID)
		if st.State.Terminal() {
			cmd2.Process.Kill() //nolint:errcheck // unwind
			t.Fatalf("target reached %s before the mutation checkpoint window; raise its budget", st.State)
		}
		if time.Now().After(deadline) {
			cmd2.Process.Kill() //nolint:errcheck // unwind
			t.Fatal("no post-mutation checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd2.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd2.Wait() //nolint:errcheck // killed: non-zero by design

	// Final recovery: the mutate record is at or below the recovered
	// barrier, so it is folded into the instance, not re-applied.
	cmd3 := startDaemon(t, addr, dataDir)
	defer func() {
		cmd3.Process.Kill() //nolint:errcheck // test teardown
		cmd3.Wait()         //nolint:errcheck // as above
	}()
	if st := waitTerminal(t, base, target.ID); st.State != service.StateDone {
		t.Fatalf("target: state %s (%s), want done", st.State, st.Error)
	}
	got := getJSON[resultio.FrontFile](t, base+"/v1/jobs/"+target.ID+"/result")

	// Uninterrupted reference: same durable configuration, same spec,
	// same mutation at the same epoch, no kills.
	refSvc, err := service.Open(service.Config{Workers: 1, DataDir: t.TempDir(), CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer refSvc.Close()
	refBlocker, err := refSvc.Submit(blockerSpec)
	if err != nil {
		t.Fatal(err)
	}
	refJob, err := refSvc.Submit(targetSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refSvc.Mutate(refJob.ID, epoch, muts); err != nil {
		t.Fatal(err)
	}
	if _, err := refSvc.Cancel(refBlocker.ID); err != nil {
		t.Fatal(err)
	}
	refDeadline := time.Now().Add(60 * time.Second)
	for !refJob.State().Terminal() {
		if time.Now().After(refDeadline) {
			t.Fatal("reference job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	ref := refJob.Result()
	if ref == nil || len(ref.Front) == 0 {
		t.Fatal("reference job produced no front")
	}

	if got.Evaluations != ref.Evaluations {
		t.Errorf("evaluations: recovered %d, reference %d", got.Evaluations, ref.Evaluations)
	}
	if len(got.Solutions) != len(ref.Front) {
		t.Fatalf("front size: recovered %d, reference %d", len(got.Solutions), len(ref.Front))
	}
	for i, sol := range got.Solutions {
		want := ref.Front[i]
		if sol.Distance != want.Obj.Distance || sol.Vehicles != want.Obj.Vehicles || sol.Tardiness != want.Obj.Tardiness {
			t.Errorf("front[%d] objectives: recovered %+v, reference %+v", i, sol, want.Obj)
		}
		if !reflect.DeepEqual(sol.Routes, want.Routes) {
			t.Errorf("front[%d] routes diverged across the kills", i)
		}
	}
}
