package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/resultio"
	"repro/internal/service"
)

// TestHelperDaemon is not a test: re-executed by TestKill9Recovery with
// TSMOD_HELPER=1 it becomes the daemon process, so the parent can kill -9
// a real tsmod rather than a goroutine.
func TestHelperDaemon(t *testing.T) {
	if os.Getenv("TSMOD_HELPER") != "1" {
		t.Skip("not a test: daemon body for the kill -9 e2e")
	}
	cfg := service.Config{
		Workers:         1,
		DataDir:         os.Getenv("TSMOD_DATA_DIR"),
		CheckpointEvery: 3,
		Version:         "kill9-e2e",
	}
	if err := run(os.Getenv("TSMOD_ADDR"), cfg, 30*time.Second, "warn"); err != nil {
		fmt.Fprintln(os.Stderr, "helper daemon:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startDaemon re-execs the test binary as a tsmod daemon on addr backed by
// dataDir and waits until it serves /v1/healthz.
func startDaemon(t *testing.T, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "TestHelperDaemon")
	cmd.Env = append(os.Environ(),
		"TSMOD_HELPER=1", "TSMOD_ADDR="+addr, "TSMOD_DATA_DIR="+dataDir)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill() //nolint:errcheck // unwind
	t.Fatal("daemon never became healthy")
	return nil
}

func submitSpec(t *testing.T, base string, spec service.JobSpec) service.SubmitResponse {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub service.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}
	return sub
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitTerminal(t *testing.T, base, id string) service.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getJSON[service.Status](t, base+"/v1/jobs/"+id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return service.Status{}
}

// TestKill9Recovery is the chaos acceptance test: a durable daemon with a
// running job (checkpointed) and a queued job behind it is killed with
// SIGKILL mid-run. A restarted daemon on the same data directory must
// bring every job to a terminal state with no duplicates and no lost
// results, the interrupted job resuming to a front bit-identical to an
// uninterrupted reference run, and a retried submission with the original
// idempotency key must map to the recovered job rather than a new one.
func TestKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns daemon processes")
	}
	dataDir := t.TempDir()
	addr := freePort(t)
	base := "http://" + addr
	cmd := startDaemon(t, addr, dataDir)

	longSpec := service.JobSpec{
		Instance:       service.InstanceSpec{Class: "R1", N: 40, Seed: 3},
		Algorithm:      "asynchronous",
		Processors:     3,
		MaxEvaluations: 400_000,
		Seed:           7,
		IdempotencyKey: "kill9-long",
	}
	quickSpec := service.JobSpec{
		Instance:       service.InstanceSpec{Class: "R1", N: 40, Seed: 3},
		MaxEvaluations: 2_000,
		Seed:           11,
		IdempotencyKey: "kill9-quick",
	}
	long := submitSpec(t, base, longSpec)   // occupies the single worker
	quick := submitSpec(t, base, quickSpec) // waits in the queue

	// Kill once the running job's first checkpoint is durably on disk.
	ckptPath := filepath.Join(dataDir, "jobs", long.ID, "ckpt.json")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckptPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill() //nolint:errcheck // unwind
			t.Fatal("no checkpoint appeared before the kill window closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no defer
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // killed: non-zero by design

	// Restart on the same data directory.
	cmd2 := startDaemon(t, addr, dataDir)
	defer func() {
		cmd2.Process.Kill() //nolint:errcheck // test teardown
		cmd2.Wait()         //nolint:errcheck // as above
	}()

	health := getJSON[service.Stats](t, base+"/v1/healthz")
	if !health.Durable {
		t.Error("restarted daemon does not report durability")
	}
	if health.Requeued != 2 {
		t.Errorf("requeued jobs: got %d, want 2 (the running and the queued one)", health.Requeued)
	}

	// Both jobs must reach done; the job list must hold exactly the two
	// originals — no duplicates, nothing lost.
	for _, id := range []string{long.ID, quick.ID} {
		if st := waitTerminal(t, base, id); st.State != service.StateDone {
			t.Errorf("job %s: state %s (%s), want done", id, st.State, st.Error)
		}
	}
	list := getJSON[map[string][]service.Status](t, base+"/v1/jobs")
	if n := len(list["jobs"]); n != 2 {
		t.Errorf("job list has %d entries after recovery, want 2", n)
	}

	// A client retry with the original idempotency key maps to the
	// recovered job instead of submitting a duplicate.
	if re := submitSpec(t, base, longSpec); re.ID != long.ID {
		t.Errorf("idempotent resubmission created %s, want %s", re.ID, long.ID)
	}

	// Determinism: the resumed run's persisted front equals an
	// uninterrupted reference run of the same spec under the same durable
	// configuration (checkpointing is part of the trajectory).
	got := getJSON[resultio.FrontFile](t, base+"/v1/jobs/"+long.ID+"/result")
	refSvc, err := service.Open(service.Config{Workers: 1, DataDir: t.TempDir(), CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer refSvc.Close()
	refJob, err := refSvc.Submit(longSpec)
	if err != nil {
		t.Fatal(err)
	}
	refDeadline := time.Now().Add(60 * time.Second)
	for !refJob.State().Terminal() {
		if time.Now().After(refDeadline) {
			t.Fatal("reference job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	ref := refJob.Result()
	if ref == nil {
		t.Fatal("reference job produced no result")
	}
	if got.Evaluations != ref.Evaluations {
		t.Errorf("evaluations: recovered %d, reference %d", got.Evaluations, ref.Evaluations)
	}
	if len(got.Solutions) != len(ref.Front) {
		t.Fatalf("front size: recovered %d, reference %d", len(got.Solutions), len(ref.Front))
	}
	for i, sol := range got.Solutions {
		want := ref.Front[i]
		if sol.Distance != want.Obj.Distance || sol.Vehicles != want.Obj.Vehicles || sol.Tardiness != want.Obj.Tardiness {
			t.Errorf("front[%d] objectives: recovered %+v, reference %+v", i, sol, want.Obj)
		}
		if !reflect.DeepEqual(sol.Routes, want.Routes) {
			t.Errorf("front[%d] routes diverged after resume", i)
		}
	}
}
