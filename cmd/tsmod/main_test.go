package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/service"
)

// freePort reserves an ephemeral port and releases it for the daemon.
// There is a tiny reuse window, acceptable in tests.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestRunDrainsOnSIGTERM boots the daemon, submits a job, sends the
// process SIGTERM and expects run to drain the job and return nil — the
// exit-0 path of the acceptance criteria.
func TestRunDrainsOnSIGTERM(t *testing.T) {
	addr := freePort(t)
	done := make(chan error, 1)
	go func() {
		done <- run(addr, service.Config{Workers: 1, Version: "test"}, 30*time.Second, "warn")
	}()

	base := "http://" + addr
	waitHealthy(t, base, done)

	spec := service.JobSpec{
		Instance:       service.InstanceSpec{Class: "R1", N: 40, Seed: 3},
		MaxEvaluations: 1500,
		Seed:           7,
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub service.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s", resp.Status)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM; want nil (clean drain)", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

func waitHealthy(t *testing.T, base string, done <-chan error) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case err := <-done:
			t.Fatalf("daemon exited during startup: %v", err)
		default:
		}
		resp, err := http.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

func TestRunRejectsBadLogLevel(t *testing.T) {
	if err := run("127.0.0.1:0", service.Config{}, time.Second, "noisy"); err == nil {
		t.Fatal("bad -log-level accepted")
	}
}

func TestRunRejectsBusyAddr(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	errCh := make(chan error, 1)
	go func() { errCh <- run(ln.Addr().String(), service.Config{Workers: 1}, time.Second, "error") }()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("listening on a busy address succeeded")
		}
	case <-time.After(10 * time.Second):
		fmt.Println("run did not return; sending SIGTERM to unwind")
		syscall.Kill(os.Getpid(), syscall.SIGTERM) //nolint:errcheck // best-effort unwind
		t.Fatal("run did not return on a busy address")
	}
}
