// Command tsmod is the solver daemon: it serves the solver-as-a-service
// HTTP API of internal/service — job submission with backpressure, live
// status with the evolving Pareto front, an SSE event stream per job, and
// the debug endpoints of internal/telemetry — on one address.
//
//	tsmod -addr :8080 -workers 2 -queue 8
//	curl -X POST localhost:8080/v1/jobs -d '{"instance":{"class":"R1","n":100},"algorithm":"asynchronous","processors":3}'
//	curl -N localhost:8080/v1/jobs/j000001/events
//
// SIGINT/SIGTERM trigger a graceful drain: intake stops (503), queued and
// running jobs finish — bounded by -drain-timeout, after which they are
// cancelled and keep their partial fronts — and the process exits 0.
//
// With -data-dir the daemon is durable: submissions are journaled before
// they are acknowledged, running searches checkpoint every -ckpt-every
// iterations, and a restart — graceful or kill -9 — recovers every job:
// finished ones keep serving their results, interrupted ones resume from
// their last checkpoint and produce the same front they would have
// produced uninterrupted (on the deterministic sim backend).
//
// tsmod also speaks cluster. With -cluster-listen it becomes a
// coordinator instead of a solver: it routes POST /v1/jobs across the
// -peers daemons, heartbeats them, steals queued work from hot nodes, and
// migrates in-flight jobs off dead ones by shipping their checkpoints.
// With -join a solver daemon gathers cross-node share batches through the
// coordinator's share proxy, enabling cluster-wide collaborative search:
//
//	tsmod -addr :8081 -join http://coord:8080          # member
//	tsmod -addr :8082 -join http://coord:8080          # member
//	tsmod -cluster-listen :8080 -peers http://host1:8081,http://host2:8082
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/tenant"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8080", "listen address")
		workers      = flag.Int("workers", 2, "worker-pool size (jobs solved concurrently)")
		queue        = flag.Int("queue", 8, "queued-job bound; submissions beyond it get 429")
		retain       = flag.Int("retain", 64, "finished jobs kept for status/result queries")
		maxEvals     = flag.Int("max-evals", 1_000_000, "per-job evaluation-budget cap")
		maxProcs     = flag.Int("max-procs", 16, "per-job processor cap")
		maxCustomers = flag.Int("max-customers", 1000, "instance-size cap")
		maxWall      = flag.Float64("max-wall", 0, "per-job wall-clock deadline cap in seconds (0 = none)")
		dataDir      = flag.String("data-dir", "", "durable state directory: job journal, checkpoints, results (empty = in-memory)")
		ckptEvery    = flag.Int("ckpt-every", 0, "search-checkpoint interval in iterations for durable jobs (0 = default 500)")
		traceDir     = flag.String("trace-dir", "", "directory receiving per-job OTLP/JSON trace exports (empty = off)")
		traceURL     = flag.String("trace-collector", "", "OTLP/HTTP collector endpoint for terminal-job traces, e.g. http://collector:4318/v1/traces (empty = off)")
		tenantKeys   = flag.String("tenant-keys", "", "tenant keyfile: API keys, quotas and fair-share weights (empty = anonymous single-tenant)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "grace period for running jobs on shutdown")
		logLevel     = flag.String("log-level", "info", "slog level: debug, info, warn or error")
		version      = flag.Bool("version", false, "print the version and exit")

		clusterListen = flag.String("cluster-listen", "", "coordinator mode: serve the cluster API on this address instead of solving (requires -peers)")
		peers         = flag.String("peers", "", "coordinator mode: comma-separated member base URLs, e.g. http://h1:8081,http://h2:8082")
		clusterTick   = flag.Duration("cluster-tick", time.Second, "coordinator mode: heartbeat/steal/migration cadence")
		join          = flag.String("join", "", "member mode: coordinator base URL for cross-node share gathering")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}
	var tenants *tenant.Registry
	if *tenantKeys != "" {
		var err error
		if tenants, err = tenant.LoadKeyfile(*tenantKeys, nil); err != nil {
			fmt.Fprintln(os.Stderr, "tsmod:", err)
			os.Exit(1)
		}
	}
	if *clusterListen != "" {
		if err := runCoordinator(*clusterListen, *peers, *clusterTick, *logLevel, tenants); err != nil {
			fmt.Fprintln(os.Stderr, "tsmod:", err)
			os.Exit(1)
		}
		return
	}
	cfg := service.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		RetainJobs:      *retain,
		MaxEvaluations:  *maxEvals,
		MaxProcessors:   *maxProcs,
		MaxCustomers:    *maxCustomers,
		MaxWallSeconds:  *maxWall,
		DataDir:         *dataDir,
		CheckpointEvery: *ckptEvery,
		TraceDir:        *traceDir,
		TraceCollector:  *traceURL,
		Tenants:         tenants,
		Version:         buildinfo.Version(),
	}
	if *join != "" {
		cfg.ShareDial = cluster.Dialer(normalizeURL(*join), http.DefaultClient)
	}
	if err := run(*addr, cfg, *drainTimeout, *logLevel); err != nil {
		fmt.Fprintln(os.Stderr, "tsmod:", err)
		os.Exit(1)
	}
}

// run serves until SIGINT/SIGTERM, then drains and returns nil on a clean
// shutdown. Split from main for the shutdown tests.
func run(addr string, cfg service.Config, drainTimeout time.Duration, logLevel string) error {
	var level slog.Level
	if err := level.UnmarshalText([]byte(logLevel)); err != nil {
		return fmt.Errorf("parsing -log-level: %w", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	cfg.Logger = logger

	svc, err := service.Open(cfg)
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: addr, Handler: svc.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		svc.Close()
		return err
	}
	logger.Info("tsmod listening", "addr", ln.Addr().String(),
		"workers", cfg.Workers, "queue", cfg.QueueDepth,
		"data_dir", cfg.DataDir, "version", cfg.Version)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us

	logger.Info("shutting down", "drain_timeout", drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop the listener first so the drain observes no new submissions,
	// then let the jobs finish. Shutdown waits for idle connections only;
	// open SSE streams are torn down by the service's stop channel.
	shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), time.Second)
	defer cancelShutdown()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "error", err)
	}
	if err := svc.Drain(drainCtx); err != nil {
		return err
	}
	srv.Close() //nolint:errcheck // lingering streams after drain
	logger.Info("drained, exiting")
	return nil
}

// runCoordinator serves the cluster API over a static peer list, driving
// the heartbeat/steal/migration loop every tick until SIGINT/SIGTERM.
// With a tenant registry, placement becomes tenant-aware: submissions
// authenticate locally and spread by per-tenant backlog across members.
func runCoordinator(addr, peerList string, tick time.Duration, logLevel string, tenants *tenant.Registry) error {
	var level slog.Level
	if err := level.UnmarshalText([]byte(logLevel)); err != nil {
		return fmt.Errorf("parsing -log-level: %w", err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var peers []string
	for _, p := range strings.Split(peerList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, normalizeURL(p))
		}
	}
	if len(peers) == 0 {
		return fmt.Errorf("-cluster-listen requires -peers (comma-separated member URLs)")
	}
	if tick <= 0 {
		tick = time.Second
	}

	coord := cluster.New(cluster.Config{
		Peers:   peers,
		Logger:  logger,
		Tenants: tenants,
		Version: buildinfo.Version(),
	})
	srv := &http.Server{Addr: addr, Handler: coord.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	logger.Info("tsmod coordinator listening", "addr", ln.Addr().String(),
		"peers", peers, "tick", tick, "version", buildinfo.Version())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case err := <-serveErr:
			return err
		case <-ctx.Done():
			stop()
			logger.Info("coordinator shutting down")
			shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			return srv.Shutdown(shutdownCtx)
		case <-ticker.C:
			rep := coord.Tick()
			if rep.Migrations > 0 || rep.Steals > 0 || rep.Dead > 0 {
				logger.Info("cluster tick", "alive", rep.Alive, "dead", rep.Dead,
					"migrations", rep.Migrations, "steals", rep.Steals)
			}
		}
	}
}

// normalizeURL defaults a bare host:port to the http scheme.
func normalizeURL(u string) string {
	if strings.Contains(u, "://") {
		return u
	}
	return "http://" + u
}
