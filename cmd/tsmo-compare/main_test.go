package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/flight"
	"repro/internal/service"
)

// recordFlightPair runs the same job spec twice on an in-process daemon
// and saves both flight recordings to disk, as a client of the HTTP API
// would with curl.
func recordFlightPair(t *testing.T, dir string) (string, string) {
	t.Helper()
	svc := service.New(service.Config{Workers: 1})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	spec := service.JobSpec{
		Instance:       service.InstanceSpec{Class: "R1", N: 40, Seed: 3},
		MaxEvaluations: 5000,
		SampleEvery:    500,
		Seed:           7,
	}
	paths := make([]string, 2)
	for i := range paths {
		j, err := svc.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(30 * time.Second)
		for !j.State().Terminal() {
			if time.Now().After(deadline) {
				t.Fatalf("job %s never finished", j.ID)
			}
			time.Sleep(5 * time.Millisecond)
		}
		resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + j.ID + "/flight")
		if err != nil {
			t.Fatal(err)
		}
		var rec flight.Recording
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(rec.Samples) == 0 {
			t.Fatalf("job %s recorded no samples", j.ID)
		}
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, j.ID+".flight.json")
		if err := os.WriteFile(paths[i], data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths[0], paths[1]
}

// TestIdenticalRunsDiffToZero is the golden acceptance test: two flight
// recordings of the same instance/seed/config diff to an all-zero delta
// table and pass the strictest regression threshold.
func TestIdenticalRunsDiffToZero(t *testing.T) {
	dir := t.TempDir()
	a, b := recordFlightPair(t, dir)

	var out bytes.Buffer
	code, err := run(&out, a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("identical recordings failed the zero threshold:\n%s", out.String())
	}
	text := out.String()
	if !strings.Contains(text, "delta_hv") {
		t.Fatalf("missing table header:\n%s", text)
	}
	if !strings.Contains(text, "max |delta_hv| 0\n") {
		t.Fatalf("identical runs did not diff to zero:\n%s", text)
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 3 {
		t.Fatalf("expected at least one delta row:\n%s", text)
	}
}

// TestDivergentRunsFailGate perturbs one recording and checks the
// regression gate trips with exit code 1.
func TestDivergentRunsFailGate(t *testing.T) {
	dir := t.TempDir()
	a, b := recordFlightPair(t, dir)

	data, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	var rec flight.Recording
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	rec.Samples[len(rec.Samples)/2].Hypervolume *= 1.25
	data, err = json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	code, err := run(&out, a, b, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("perturbed recording passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Fatalf("missing FAIL line:\n%s", out.String())
	}
}
