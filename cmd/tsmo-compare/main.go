// Command tsmo-compare diffs two search flight recordings — the JSON
// served by the daemon's GET /v1/jobs/{id}/flight — into a per-interval
// convergence-delta table: hypervolume, spacing and archive size of both
// runs at each shared evaluation count, plus B minus A. Two recordings of
// the same instance/seed/config on the sim backend are bit-identical and
// diff to zero, so any non-zero row localizes a behavior change to the
// first sampling interval where the trajectories split.
//
//	curl -s localhost:8080/v1/jobs/j000001/flight > a.json
//	curl -s localhost:8080/v1/jobs/j000002/flight > b.json
//	tsmo-compare a.json b.json
//
// With -max-delta-hv the command doubles as a regression gate: it exits 1
// when the largest absolute hypervolume delta exceeds the threshold.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/flight"
)

func main() {
	var (
		maxDeltaHV = flag.Float64("max-delta-hv", -1, "fail (exit 1) when |delta_hv| exceeds this at any interval (<0 = report only)")
		version    = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tsmo-compare [flags] <a.json> <b.json>")
		os.Exit(2)
	}
	code, err := run(os.Stdout, flag.Arg(0), flag.Arg(1), *maxDeltaHV)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tsmo-compare:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run diffs the recordings at pathA/pathB into w and returns the process
// exit code: 0 when within the threshold (or no threshold), 1 otherwise.
func run(w io.Writer, pathA, pathB string, maxDeltaHV float64) (int, error) {
	a, err := load(pathA)
	if err != nil {
		return 0, err
	}
	b, err := load(pathB)
	if err != nil {
		return 0, err
	}
	if a.Instance != b.Instance || a.Seed != b.Seed {
		fmt.Fprintf(w, "note: comparing different runs: %s seed %d vs %s seed %d\n",
			a.Instance, a.Seed, b.Instance, b.Seed)
	}
	rows, onlyA, onlyB := flight.Diff(a, b)
	if err := flight.WriteTable(w, rows); err != nil {
		return 0, err
	}
	maxHV := flight.MaxAbsDeltaHV(rows)
	fmt.Fprintf(w, "%d shared intervals, %d only in %s, %d only in %s, max |delta_hv| %g\n",
		len(rows), onlyA, pathA, onlyB, pathB, maxHV)
	if maxDeltaHV >= 0 && (maxHV > maxDeltaHV || onlyA > 0 || onlyB > 0) {
		fmt.Fprintf(w, "FAIL: recordings differ beyond max-delta-hv %g\n", maxDeltaHV)
		return 1, nil
	}
	return 0, nil
}

func load(path string) (flight.Recording, error) {
	var rec flight.Recording
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}
