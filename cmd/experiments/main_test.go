package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunFigure1Mode(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fig.csv")
	if err := run("all", "quick", 3, "", true, 30, 3, 300, out, true, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleTableQuick(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "res.md")
	if err := run("I", "quick", 3, md, false, 0, 0, 0, "", true, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "### Table I") {
		t.Error("markdown output missing table header")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("V", "quick", 1, "", false, 0, 0, 0, "", true, false); err == nil {
		t.Error("unknown table accepted")
	}
	if err := run("I", "galactic", 1, "", false, 0, 0, 0, "", true, false); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := runExtra("nope", 1); err == nil {
		t.Error("unknown extra experiment accepted")
	}
}
