// Command experiments regenerates the paper's evaluation: Tables I–IV and
// the Figure 1 trajectory.
//
//	experiments -table I -scale quick
//	experiments -table all -scale medium -md results.md
//	experiments -figure1 -o trajectory.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/exp"
	"repro/internal/telemetry"
)

func main() {
	var (
		table    = flag.String("table", "all", `table to reproduce: I, II, III, IV or "all"`)
		scale    = flag.String("scale", "quick", "experiment scale: quick, medium or paper")
		seed     = flag.Uint64("seed", 2007, "experiment seed")
		mdOut    = flag.String("md", "", "append markdown tables to this file")
		figure1  = flag.Bool("figure1", false, "generate the Figure 1 trajectory instead of tables")
		figN     = flag.Int("fig-n", 100, "Figure 1 instance size")
		figP     = flag.Int("fig-procs", 3, "Figure 1 processor count")
		figE     = flag.Int("fig-evals", 5000, "Figure 1 evaluation budget")
		out      = flag.String("o", "figure1.csv", "Figure 1 CSV output path")
		quiet    = flag.Bool("q", false, "suppress progress output")
		combined = flag.Bool("combined", false, "also run the future-work combined variant (P >= 4 blocks)")
		extra    = flag.String("extra", "", `extra experiment instead of the tables: "equal-time" (the paper's §IV remark), "operators" (neighborhood ablation) or "granular" (full vs k-nearest quality parity)`)
		pprofA   = flag.String("pprof", "", "serve net/http/pprof + expvar on this address while the experiments run (e.g. localhost:6060)")
		logLevel = flag.String("log-level", "", "enable a structured slog progress stream on stderr: debug, info, warn or error")
		version  = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	if *logLevel != "" {
		level, err := telemetry.ParseLevel(*logLevel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		logger := telemetry.NewLogger(os.Stderr, level)
		logger.Info("experiments starting", "table", *table, "scale", *scale, "seed", *seed)
		defer logger.Info("experiments done")
	}
	if *pprofA != "" {
		srv, err := telemetry.Serve(*pprofA, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pprof/expvar listening on http://%s/debug/pprof\n", srv.Addr)
	}

	if *extra != "" {
		if err := runExtra(*extra, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*table, *scale, *seed, *mdOut, *figure1, *figN, *figP, *figE, *out, *quiet, *combined); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func runExtra(kind string, seed uint64) error {
	switch kind {
	case "equal-time":
		res, err := exp.RunEqualTime(400, 600, []int{3, 6, 12}, 5, seed)
		if err != nil {
			return err
		}
		return res.Render(os.Stdout)
	case "operators":
		res, err := exp.RunOperatorAblation(60, 6000, 3, seed)
		if err != nil {
			return err
		}
		return res.Render(os.Stdout)
	case "granular":
		res, err := exp.RunGranularParity([]int{100, 200}, 60000, 50, 20, seed)
		if err != nil {
			return err
		}
		return res.Render(os.Stdout)
	}
	return fmt.Errorf("unknown extra experiment %q", kind)
}

func run(table, scaleName string, seed uint64, mdOut string, figure1 bool, figN, figP, figE int, out string, quiet, combined bool) error {
	if figure1 {
		traj, err := exp.RunFigure1(figN, figP, figE, seed)
		if err != nil {
			return err
		}
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := traj.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("figure 1 trajectory: %d points written to %s\n", len(traj.Points), out)
		return nil
	}

	scale, err := exp.ScaleByName(scaleName)
	if err != nil {
		return err
	}
	scale.IncludeCombined = combined
	var specs []exp.TableSpec
	if table == "all" {
		specs = exp.Tables()
	} else {
		spec, err := exp.TableByID(table)
		if err != nil {
			return err
		}
		specs = []exp.TableSpec{spec}
	}

	logf := func(format string, args ...any) {
		if !quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var md *os.File
	if mdOut != "" {
		md, err = os.OpenFile(mdOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer md.Close()
	}

	for _, spec := range specs {
		res, err := exp.RunTable(spec, scale, seed, logf)
		if err != nil {
			return err
		}
		if err := res.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if md != nil {
			if err := res.RenderMarkdown(md); err != nil {
				return err
			}
		}
	}
	return nil
}
