package main

import (
	"bufio"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resultio"
)

// baseOptions mirrors the flag defaults for the small test instance.
func baseOptions() options {
	return options{
		algName:  "sequential",
		procs:    1,
		class:    "R1",
		n:        40,
		seed:     1,
		instSeed: 1,
		evals:    800,
		nbh:      40,
		tenure:   20,
		archive:  20,
		restart:  100,
		backend:  "sim",
	}
}

func TestRunGeneratedInstance(t *testing.T) {
	dir := t.TempDir()
	o := baseOptions()
	o.algName = "asynchronous"
	o.procs = 3
	o.jsonOut = filepath.Join(dir, "front.json")
	o.trajOut = filepath.Join(dir, "traj.csv")
	o.routes = true
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(o.jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	front, err := resultio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if front.Algorithm != "asynchronous" || len(front.Solutions) == 0 {
		t.Errorf("unexpected result file: %+v", front)
	}
	traj, err := os.ReadFile(o.trajOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(traj), "iteration,born") {
		t.Error("trajectory CSV header missing")
	}
}

func TestRunInstanceFile(t *testing.T) {
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.txt")
	text := `T1

VEHICLE
NUMBER     CAPACITY
  5         100

CUSTOMER
CUST NO.  XCOORD.   YCOORD.    DEMAND   READY TIME  DUE DATE   SERVICE TIME
    0      50         50          0          0       1000         0
    1      60         50         10          0        900        10
    2      40         50         10          0        900        10
    3      50         60         10          0        900        10
`
	if err := os.WriteFile(inst, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	o := baseOptions()
	o.class, o.n = "", 0
	o.instFile = inst
	o.evals = 300
	o.nbh = 20
	o.all = true
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string]func() options{
		"bad algorithm": func() options {
			o := baseOptions()
			o.algName = "nope"
			return o
		},
		"bad class": func() options {
			o := baseOptions()
			o.class = "X9"
			return o
		},
		"bad backend": func() options {
			o := baseOptions()
			o.backend = "warp"
			return o
		},
		"missing instance file": func() options {
			o := baseOptions()
			o.class, o.n = "", 0
			o.instFile = "/no/such/file"
			return o
		},
		"bad log level": func() options {
			o := baseOptions()
			o.logLevel = "loud"
			return o
		},
		"bad fault spec": func() options {
			o := baseOptions()
			o.faults = "1:explode@3"
			return o
		},
	}
	for name, f := range cases {
		if run(context.Background(), f()) == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// TestRunTelemetryReport is the ISSUE's acceptance check: an async run
// with -telemetry set must produce a JSONL report whose summary exposes
// per-operator accept rates, decision-function firing reasons, worker idle
// time and delta fast-path/fallback counts.
func TestRunTelemetryReport(t *testing.T) {
	dir := t.TempDir()
	o := baseOptions()
	o.algName = "asynchronous"
	o.procs = 3
	o.evals = 1500
	o.telemetryOut = filepath.Join(dir, "run.jsonl")
	o.pprofAddr = "127.0.0.1:0"
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(o.telemetryOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var summary map[string]any
	events := map[string]int{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		name, _ := rec["event"].(string)
		if name == "" {
			t.Fatalf("record without event tag: %v", rec)
		}
		if _, ok := rec["ts"].(string); !ok {
			t.Fatalf("record without ts: %v", rec)
		}
		events[name]++
		if name == "summary" {
			summary = rec
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if events["run_start"] != 1 || events["summary"] != 1 {
		t.Fatalf("want one run_start and one summary event, got %v", events)
	}
	if events["snapshot"] == 0 {
		t.Errorf("no front-quality snapshot events in %v", events)
	}

	counters, ok := summary["counters"].(map[string]any)
	if !ok {
		t.Fatal("summary has no counters object")
	}
	// Per-operator accept rates.
	operators, ok := counters["operators"].(map[string]any)
	if !ok || len(operators) == 0 {
		t.Fatalf("no operator stats: %v", counters["operators"])
	}
	for name, v := range operators {
		op := v.(map[string]any)
		for _, key := range []string{"proposed", "selected", "accepted", "select_rate", "accept_rate"} {
			if _, ok := op[key]; !ok {
				t.Errorf("operator %s missing %s: %v", name, key, op)
			}
		}
	}
	// Decision-function firing reasons.
	async := counters["async"].(map[string]any)
	fires, ok := async["decision_fires"].(map[string]any)
	if !ok {
		t.Fatal("async counters missing decision_fires")
	}
	total := 0.0
	for _, reason := range []string{"idle_worker", "dominating_candidate", "timeout", "budget_exhausted"} {
		n, ok := fires[reason].(float64)
		if !ok {
			t.Errorf("decision_fires missing reason %s: %v", reason, fires)
		}
		total += n
	}
	if total == 0 {
		t.Error("decision function never fired in an async run")
	}
	// Worker idle time.
	worker := counters["worker"].(map[string]any)
	if idle, ok := worker["idle_seconds"].(float64); !ok || idle <= 0 {
		t.Errorf("worker idle_seconds not positive: %v", worker["idle_seconds"])
	}
	// Delta fast-path vs full-simulation fallback counts.
	delta := counters["delta"].(map[string]any)
	if fast, ok := delta["fast"].(float64); !ok || fast == 0 {
		t.Errorf("delta fast-path count not positive: %v", delta["fast"])
	}
	if _, ok := delta["apply_fallback"]; !ok {
		t.Errorf("delta counters missing apply_fallback: %v", delta)
	}
	// Search counters made it through too.
	search := counters["search"].(map[string]any)
	if n, _ := search["iterations"].(float64); n == 0 {
		t.Error("search iterations counter is zero")
	}
}

// TestRunWithFaults drives the -faults flag end to end: a synchronous run
// that loses a worker mid-flight must still complete, and the telemetry
// summary must account for the injected crash and the recovery.
func TestRunWithFaults(t *testing.T) {
	dir := t.TempDir()
	o := baseOptions()
	o.algName = "synchronous"
	o.procs = 3
	o.evals = 1500
	o.faults = "1:crash@2"
	o.telemetryOut = filepath.Join(dir, "run.jsonl")
	if err := run(context.Background(), o); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(o.telemetryOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var summary map[string]any
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if name, _ := rec["event"].(string); name == "summary" {
			summary = rec
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	counters, ok := summary["counters"].(map[string]any)
	if !ok {
		t.Fatal("summary has no counters object")
	}
	faults, ok := counters["faults"].(map[string]any)
	if !ok {
		t.Fatalf("no fault stats in summary: %v", counters["faults"])
	}
	if n, _ := faults["crashes"].(float64); n == 0 {
		t.Errorf("crashes counter is zero: %v", faults)
	}
	if n, _ := faults["worker_evictions"].(float64); n == 0 {
		t.Errorf("worker_evictions counter is zero: %v", faults)
	}
}
