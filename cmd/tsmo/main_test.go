package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/resultio"
)

func TestRunGeneratedInstance(t *testing.T) {
	dir := t.TempDir()
	jsonOut := filepath.Join(dir, "front.json")
	trajOut := filepath.Join(dir, "traj.csv")
	err := run("asynchronous", 3, 0, "R1", 40, 1, 1, "",
		800, 40, 20, 20, 100, "sim", jsonOut, trajOut, false, true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	front, err := resultio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if front.Algorithm != "asynchronous" || len(front.Solutions) == 0 {
		t.Errorf("unexpected result file: %+v", front)
	}
	traj, err := os.ReadFile(trajOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(traj), "iteration,born") {
		t.Error("trajectory CSV header missing")
	}
}

func TestRunInstanceFile(t *testing.T) {
	dir := t.TempDir()
	inst := filepath.Join(dir, "inst.txt")
	text := `T1

VEHICLE
NUMBER     CAPACITY
  5         100

CUSTOMER
CUST NO.  XCOORD.   YCOORD.    DEMAND   READY TIME  DUE DATE   SERVICE TIME
    0      50         50          0          0       1000         0
    1      60         50         10          0        900        10
    2      40         50         10          0        900        10
    3      50         60         10          0        900        10
`
	if err := os.WriteFile(inst, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run("sequential", 1, 0, "", 0, 1, 1, inst,
		300, 20, 20, 20, 100, "sim", "", "", true, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := map[string]func() error{
		"bad algorithm": func() error {
			return run("nope", 1, 0, "R1", 20, 1, 1, "", 100, 20, 20, 20, 100, "sim", "", "", false, false)
		},
		"bad class": func() error {
			return run("sequential", 1, 0, "X9", 20, 1, 1, "", 100, 20, 20, 20, 100, "sim", "", "", false, false)
		},
		"bad backend": func() error {
			return run("sequential", 1, 0, "R1", 20, 1, 1, "", 100, 20, 20, 20, 100, "warp", "", "", false, false)
		},
		"missing instance file": func() error {
			return run("sequential", 1, 0, "", 0, 1, 1, "/no/such/file", 100, 20, 20, 20, 100, "sim", "", "", false, false)
		},
	}
	for name, f := range cases {
		if f() == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
