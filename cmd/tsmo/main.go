// Command tsmo runs one TSMO variant on one CVRPTW instance and prints the
// resulting non-dominated front.
//
// Usage examples:
//
//	tsmo -alg asynchronous -procs 6 -class R1 -n 400 -evals 100000
//	tsmo -alg sequential -instance r101.txt -evals 20000 -json out.json
//	tsmo -alg collaborative -procs 3 -backend goroutine -class C2 -n 100
//	tsmo -alg asynchronous -procs 6 -telemetry run.jsonl -log-level info
//	tsmo -backend goroutine -pprof localhost:6060 -cpuprofile cpu.prof
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"syscall"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/deme"
	"repro/internal/resultio"
	"repro/internal/solution"
	"repro/internal/telemetry"
	"repro/internal/vrptw"
)

// options collects every flag of one invocation.
type options struct {
	algName  string
	procs    int
	islands  int
	class    string
	n        int
	seed     uint64
	instSeed uint64
	instFile string
	evals    int
	nbh      int
	tenure   int
	archive  int
	restart  int
	granular int
	evalWork int
	backend  string
	faults   string
	jsonOut  string
	trajOut  string
	all      bool
	routes   bool

	// Observability.
	telemetryOut string
	logLevel     string
	pprofAddr    string
	cpuProfile   string
	memProfile   string
	sampleEvery  int
}

func main() {
	var o options
	flag.StringVar(&o.algName, "alg", "sequential", "algorithm: sequential, synchronous, asynchronous, collaborative, combined")
	flag.IntVar(&o.procs, "procs", 1, "number of processes for the parallel variants")
	flag.IntVar(&o.islands, "islands", 0, "islands for the combined variant (0 = sqrt(procs))")
	flag.StringVar(&o.class, "class", "R1", "generated instance class (R1, C1, RC1, R2, C2, RC2)")
	flag.IntVar(&o.n, "n", 100, "generated instance size (customers)")
	flag.Uint64Var(&o.seed, "seed", 1, "run seed")
	flag.Uint64Var(&o.instSeed, "instance-seed", 1, "generated instance seed")
	flag.StringVar(&o.instFile, "instance", "", "Solomon-format instance file (overrides -class/-n)")
	flag.IntVar(&o.evals, "evals", 20000, "evaluation budget")
	flag.IntVar(&o.nbh, "neighborhood", 200, "neighborhood size")
	flag.IntVar(&o.tenure, "tenure", 20, "tabu tenure")
	flag.IntVar(&o.archive, "archive", 20, "archive capacity")
	flag.IntVar(&o.restart, "restart", 100, "restart after this many stagnant iterations")
	flag.IntVar(&o.granular, "granular", 0, "granular neighborhoods: draw moves from the k-nearest arc graph (0 = full neighborhoods)")
	flag.IntVar(&o.evalWork, "eval-workers", 0, "shard candidate delta evaluation over this many goroutines (0/1 = serial; results are bit-identical)")
	flag.StringVar(&o.backend, "backend", "sim", "runtime backend: sim (deterministic Origin 3800) or goroutine")
	flag.StringVar(&o.faults, "faults", "", `inject faults, e.g. "1:crash@5;0:drop=0.2,tags=2;*:skew=0.1" (see deme.ParseFaultPlans)`)
	flag.StringVar(&o.jsonOut, "json", "", "write the front as JSON to this file")
	flag.StringVar(&o.trajOut, "trajectory", "", "record the Figure-1 trajectory CSV to this file")
	flag.BoolVar(&o.all, "all", false, "print infeasible front members too")
	flag.BoolVar(&o.routes, "routes", false, "print the route sheet of the best solution")
	flag.StringVar(&o.telemetryOut, "telemetry", "", "write the JSONL telemetry run report (events + summary counters) to this file")
	flag.StringVar(&o.logLevel, "log-level", "", "enable the structured slog event stream on stderr: debug, info, warn or error")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof + expvar + /telemetry on this address (e.g. localhost:6060)")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a CPU profile of the run to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a heap profile taken after the run to this file")
	flag.IntVar(&o.sampleEvery, "sample", 0, "record a telemetry front-quality snapshot every this many evaluations (0 with -telemetry: evals/20)")
	version := flag.Bool("version", false, "print the version and exit")
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	// SIGINT/SIGTERM cancel the run's context: the search stops within
	// one iteration and the partial front (and any -json/-trajectory/
	// -telemetry outputs) is still written. A second signal kills the
	// process the usual way.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if err := run(ctx, o); err != nil {
		fmt.Fprintln(os.Stderr, "tsmo:", err)
		os.Exit(1)
	}
}

// setupTelemetry builds the telemetry layer from the observability flags;
// it returns nil (disabled) when none was given.
func setupTelemetry(o options) (*telemetry.Telemetry, error) {
	if o.telemetryOut == "" && o.logLevel == "" && o.pprofAddr == "" {
		return nil, nil
	}
	var w *telemetry.Writer
	if o.telemetryOut != "" {
		var err error
		if w, err = telemetry.OpenWriter(o.telemetryOut); err != nil {
			return nil, err
		}
	}
	var log *slog.Logger
	if o.logLevel != "" {
		level, err := telemetry.ParseLevel(o.logLevel)
		if err != nil {
			return nil, err
		}
		log = telemetry.NewLogger(os.Stderr, level)
	}
	return telemetry.New(log, w), nil
}

func run(ctx context.Context, o options) error {
	alg, err := core.ParseAlgorithm(o.algName)
	if err != nil {
		return err
	}

	var in *vrptw.Instance
	if o.instFile != "" {
		f, err := os.Open(o.instFile)
		if err != nil {
			return err
		}
		in, err = vrptw.ParseSolomon(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		cl, err := vrptw.ParseClass(o.class)
		if err != nil {
			return err
		}
		in, err = vrptw.Generate(vrptw.GenConfig{Class: cl, N: o.n, Seed: o.instSeed})
		if err != nil {
			return err
		}
	}

	tel, err := setupTelemetry(o)
	if err != nil {
		return err
	}

	cfg := core.DefaultConfig()
	cfg.MaxEvaluations = o.evals
	cfg.NeighborhoodSize = o.nbh
	cfg.TabuTenure = o.tenure
	cfg.ArchiveSize = o.archive
	cfg.RestartIterations = o.restart
	cfg.Processors = o.procs
	cfg.Islands = o.islands
	cfg.Seed = o.seed
	cfg.GranularK = o.granular
	cfg.EvalWorkers = o.evalWork
	cfg.RecordTrajectory = o.trajOut != ""
	cfg.SampleEvery = o.sampleEvery
	cfg.Telemetry = tel
	if tel.Enabled() && cfg.SampleEvery == 0 {
		// Default snapshot cadence: ~20 front-quality snapshots per run.
		cfg.SampleEvery = max(o.evals/20, 1)
	}

	if o.pprofAddr != "" {
		srv, err := telemetry.Serve(o.pprofAddr, tel)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pprof/expvar listening on http://%s/debug/pprof\n", srv.Addr)
	}
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var rt deme.Runtime
	switch o.backend {
	case "sim":
		rt = deme.NewSim(deme.Origin3800())
	case "goroutine":
		rt = deme.NewGoroutine()
	default:
		return fmt.Errorf("unknown backend %q", o.backend)
	}
	if o.faults != "" {
		plans, err := deme.ParseFaultPlans(o.faults)
		if err != nil {
			return err
		}
		frt := deme.NewFaulty(rt, plans)
		frt.Faults = tel.FaultGroup()
		rt = frt
	}

	tel.Event("run_start", map[string]any{
		"instance":  in.Name,
		"customers": in.N(),
		"algorithm": alg.String(),
		"procs":     o.procs,
		"evals":     o.evals,
		"backend":   o.backend,
		"seed":      o.seed,
	})
	tel.Logger().Info("run starting", "instance", in.Name, "algorithm", alg.String(), "procs", o.procs)

	res, err := core.RunContext(ctx, alg, in, cfg, rt)
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "tsmo: interrupted — reporting the partial result")
	}

	fmt.Printf("instance %s (N=%d, R=%d, capacity %.0f)\n", in.Name, in.N(), in.Vehicles, in.Capacity)
	fmt.Printf("%s, P=%d: %d evaluations, %d iterations, runtime %.1f s (%s backend)\n",
		res.Algorithm, res.Processors, res.Evaluations, res.Iterations, res.Elapsed, o.backend)

	front := res.FeasibleFront()
	if o.all {
		front = res.Front
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Obj.Distance < front[j].Obj.Distance })
	fmt.Printf("front (%d solutions%s):\n", len(front), map[bool]string{true: "", false: ", feasible only"}[o.all])
	fmt.Printf("%12s %10s %12s\n", "distance", "vehicles", "tardiness")
	for _, s := range front {
		fmt.Printf("%12.2f %10.0f %12.2f\n", s.Obj.Distance, s.Obj.Vehicles, s.Obj.Tardiness)
	}

	if o.routes && len(front) > 0 {
		fmt.Println()
		if err := solution.WriteRoutes(os.Stdout, in, front[0]); err != nil {
			return err
		}
	}

	if o.jsonOut != "" {
		f, err := os.Create(o.jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := resultio.Write(f, resultio.FromResult(in.Name, res, true)); err != nil {
			return err
		}
		fmt.Printf("front written to %s\n", o.jsonOut)
	}
	if o.trajOut != "" && res.Trajectory != nil {
		f, err := os.Create(o.trajOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Trajectory.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trajectory (%d points) written to %s\n", len(res.Trajectory.Points), o.trajOut)
	}

	if tel.Enabled() {
		tel.Summary(map[string]any{
			"instance":        in.Name,
			"algorithm":       res.Algorithm.String(),
			"procs":           res.Processors,
			"evaluations":     res.Evaluations,
			"iterations":      res.Iterations,
			"shares":          res.Shares,
			"elapsed_seconds": res.Elapsed,
			"front_size":      len(res.Front),
		})
		if err := tel.Close(); err != nil {
			return err
		}
		if o.telemetryOut != "" {
			fmt.Printf("telemetry report written to %s\n", o.telemetryOut)
		}
	}
	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
