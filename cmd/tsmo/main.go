// Command tsmo runs one TSMO variant on one CVRPTW instance and prints the
// resulting non-dominated front.
//
// Usage examples:
//
//	tsmo -alg asynchronous -procs 6 -class R1 -n 400 -evals 100000
//	tsmo -alg sequential -instance r101.txt -evals 20000 -json out.json
//	tsmo -alg collaborative -procs 3 -backend goroutine -class C2 -n 100
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/deme"
	"repro/internal/resultio"
	"repro/internal/solution"
	"repro/internal/vrptw"
)

func main() {
	var (
		algName  = flag.String("alg", "sequential", "algorithm: sequential, synchronous, asynchronous, collaborative, combined")
		procs    = flag.Int("procs", 1, "number of processes for the parallel variants")
		islands  = flag.Int("islands", 0, "islands for the combined variant (0 = sqrt(procs))")
		class    = flag.String("class", "R1", "generated instance class (R1, C1, RC1, R2, C2, RC2)")
		n        = flag.Int("n", 100, "generated instance size (customers)")
		seed     = flag.Uint64("seed", 1, "run seed")
		instSeed = flag.Uint64("instance-seed", 1, "generated instance seed")
		instFile = flag.String("instance", "", "Solomon-format instance file (overrides -class/-n)")
		evals    = flag.Int("evals", 20000, "evaluation budget")
		nbh      = flag.Int("neighborhood", 200, "neighborhood size")
		tenure   = flag.Int("tenure", 20, "tabu tenure")
		archive  = flag.Int("archive", 20, "archive capacity")
		restart  = flag.Int("restart", 100, "restart after this many stagnant iterations")
		backend  = flag.String("backend", "sim", "runtime backend: sim (deterministic Origin 3800) or goroutine")
		jsonOut  = flag.String("json", "", "write the front as JSON to this file")
		trajOut  = flag.String("trajectory", "", "record the Figure-1 trajectory CSV to this file")
		all      = flag.Bool("all", false, "print infeasible front members too")
		routes   = flag.Bool("routes", false, "print the route sheet of the best solution")
	)
	flag.Parse()

	if err := run(*algName, *procs, *islands, *class, *n, *seed, *instSeed, *instFile,
		*evals, *nbh, *tenure, *archive, *restart, *backend, *jsonOut, *trajOut, *all, *routes); err != nil {
		fmt.Fprintln(os.Stderr, "tsmo:", err)
		os.Exit(1)
	}
}

func run(algName string, procs, islands int, class string, n int, seed, instSeed uint64,
	instFile string, evals, nbh, tenure, archive, restart int, backend, jsonOut, trajOut string, all, routes bool) error {
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		return err
	}

	var in *vrptw.Instance
	if instFile != "" {
		f, err := os.Open(instFile)
		if err != nil {
			return err
		}
		in, err = vrptw.ParseSolomon(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		cl, err := vrptw.ParseClass(class)
		if err != nil {
			return err
		}
		in, err = vrptw.Generate(vrptw.GenConfig{Class: cl, N: n, Seed: instSeed})
		if err != nil {
			return err
		}
	}

	cfg := core.DefaultConfig()
	cfg.MaxEvaluations = evals
	cfg.NeighborhoodSize = nbh
	cfg.TabuTenure = tenure
	cfg.ArchiveSize = archive
	cfg.RestartIterations = restart
	cfg.Processors = procs
	cfg.Islands = islands
	cfg.Seed = seed
	cfg.RecordTrajectory = trajOut != ""

	var rt deme.Runtime
	switch backend {
	case "sim":
		rt = deme.NewSim(deme.Origin3800())
	case "goroutine":
		rt = deme.NewGoroutine()
	default:
		return fmt.Errorf("unknown backend %q", backend)
	}

	res, err := core.Run(alg, in, cfg, rt)
	if err != nil {
		return err
	}

	fmt.Printf("instance %s (N=%d, R=%d, capacity %.0f)\n", in.Name, in.N(), in.Vehicles, in.Capacity)
	fmt.Printf("%s, P=%d: %d evaluations, %d iterations, runtime %.1f s (%s backend)\n",
		res.Algorithm, res.Processors, res.Evaluations, res.Iterations, res.Elapsed, backend)

	front := res.FeasibleFront()
	if all {
		front = res.Front
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Obj.Distance < front[j].Obj.Distance })
	fmt.Printf("front (%d solutions%s):\n", len(front), map[bool]string{true: "", false: ", feasible only"}[all])
	fmt.Printf("%12s %10s %12s\n", "distance", "vehicles", "tardiness")
	for _, s := range front {
		fmt.Printf("%12.2f %10.0f %12.2f\n", s.Obj.Distance, s.Obj.Vehicles, s.Obj.Tardiness)
	}

	if routes && len(front) > 0 {
		fmt.Println()
		if err := solution.WriteRoutes(os.Stdout, in, front[0]); err != nil {
			return err
		}
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := resultio.Write(f, resultio.FromResult(in.Name, res, true)); err != nil {
			return err
		}
		fmt.Printf("front written to %s\n", jsonOut)
	}
	if trajOut != "" && res.Trajectory != nil {
		f, err := os.Create(trajOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Trajectory.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trajectory (%d points) written to %s\n", len(res.Trajectory.Points), trajOut)
	}
	return nil
}
