package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/resultio"
)

func writeFront(t *testing.T, path string, f *resultio.FrontFile) {
	t.Helper()
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	if err := resultio.Write(fh, f); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageRun(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	writeFront(t, a, &resultio.FrontFile{
		Instance: "x", Algorithm: "sequential",
		Solutions: []resultio.SolutionRecord{{Distance: 10, Vehicles: 2}},
	})
	writeFront(t, b, &resultio.FrontFile{
		Instance: "x", Algorithm: "asynchronous",
		Solutions: []resultio.SolutionRecord{{Distance: 12, Vehicles: 3}},
	})
	if err := run(a, b, false); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageErrors(t *testing.T) {
	if err := run("", "", false); err == nil {
		t.Error("missing paths accepted")
	}
	if err := run("/no/such/a.json", "/no/such/b.json", false); err == nil {
		t.Error("missing files accepted")
	}
}
