// Command coverage computes Zitzler's set coverage metric between two
// result files written by cmd/tsmo -json.
//
//	coverage -a async.json -b sequential.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/metrics"
	"repro/internal/resultio"
)

func main() {
	var (
		aPath   = flag.String("a", "", "first result file")
		bPath   = flag.String("b", "", "second result file")
		all     = flag.Bool("all", false, "include infeasible solutions")
		version = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	if err := run(*aPath, *bPath, *all); err != nil {
		fmt.Fprintln(os.Stderr, "coverage:", err)
		os.Exit(1)
	}
}

func run(aPath, bPath string, all bool) error {
	if aPath == "" || bPath == "" {
		return fmt.Errorf("both -a and -b are required")
	}
	load := func(path string) (*resultio.FrontFile, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return resultio.Read(f)
	}
	fa, err := load(aPath)
	if err != nil {
		return err
	}
	fb, err := load(bPath)
	if err != nil {
		return err
	}
	oa := fa.Objectives(!all)
	ob := fb.Objectives(!all)
	fmt.Printf("A: %s (%s, P=%d), %d solutions\n", aPath, fa.Algorithm, fa.Processors, len(oa))
	fmt.Printf("B: %s (%s, P=%d), %d solutions\n", bPath, fb.Algorithm, fb.Processors, len(ob))
	fmt.Printf("C(A,B) = %.2f%%  (share of B weakly dominated by A)\n", metrics.Coverage(oa, ob)*100)
	fmt.Printf("C(B,A) = %.2f%%  (share of A weakly dominated by B)\n", metrics.Coverage(ob, oa)*100)
	return nil
}
