package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/vrptw"
)

func TestGenerateSingleFile(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "r1.txt")
	if err := run("R1", 30, 1, 1, out, "", 1.0, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	in, err := vrptw.ParseSolomon(f)
	if err != nil {
		t.Fatal(err)
	}
	if in.N() != 30 {
		t.Errorf("generated instance has %d customers, want 30", in.N())
	}
}

func TestGenerateMultipleToDir(t *testing.T) {
	dir := t.TempDir()
	if err := run("C2", 20, 5, 3, "", dir, 0.8, false); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("generated %d files, want 3", len(entries))
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run("X", 10, 1, 1, "", "", 1, false); err == nil {
		t.Error("bad class accepted")
	}
	if err := run("R1", 10, 1, 3, "", "", 1, false); err == nil {
		t.Error("multiple instances without -dir accepted")
	}
}

func TestGenerateStats(t *testing.T) {
	if err := run("R1", 25, 1, 1, "", "", 1, true); err != nil {
		t.Fatal(err)
	}
}
