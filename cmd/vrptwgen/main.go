// Command vrptwgen generates extended-Solomon-style CVRPTW instances in
// the classic Solomon text format (the stand-in for the Homberger set; see
// DESIGN.md §2).
//
//	vrptwgen -class R1 -n 400 -seed 1 -o R1_400_1.txt
//	vrptwgen -class C2 -n 600 -count 10 -dir instances/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/buildinfo"

	"repro/internal/vrptw"
)

func main() {
	var (
		class   = flag.String("class", "R1", "instance class (R1, C1, RC1, R2, C2, RC2)")
		n       = flag.Int("n", 100, "number of customers")
		seed    = flag.Uint64("seed", 1, "first generator seed")
		count   = flag.Int("count", 1, "number of instances (seeds seed..seed+count-1)")
		out     = flag.String("o", "", "output file (single instance; default stdout)")
		dir     = flag.String("dir", "", "output directory (multiple instances)")
		density = flag.Float64("density", 1.0, "fraction of customers with restrictive time windows")
		stats   = flag.Bool("stats", false, "print instance summary statistics instead of the instance")
		version = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	if err := run(*class, *n, *seed, *count, *out, *dir, *density, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "vrptwgen:", err)
		os.Exit(1)
	}
}

func run(class string, n int, seed uint64, count int, out, dir string, density float64, stats bool) error {
	cl, err := vrptw.ParseClass(class)
	if err != nil {
		return err
	}
	if count > 1 && dir == "" && !stats {
		return fmt.Errorf("use -dir when generating multiple instances")
	}
	for i := 0; i < count; i++ {
		in, err := vrptw.Generate(vrptw.GenConfig{
			Class: cl, N: n, Seed: seed + uint64(i), WindowDensity: density,
		})
		if err != nil {
			return err
		}
		if stats {
			if err := vrptw.Summarize(in).Write(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			continue
		}
		switch {
		case dir != "":
			path := filepath.Join(dir, in.Name+".txt")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = vrptw.WriteSolomon(f, in)
			f.Close()
			if err != nil {
				return err
			}
			fmt.Println(path)
		case out != "":
			f, err := os.Create(out)
			if err != nil {
				return err
			}
			err = vrptw.WriteSolomon(f, in)
			f.Close()
			if err != nil {
				return err
			}
			fmt.Println(out)
		default:
			if err := vrptw.WriteSolomon(os.Stdout, in); err != nil {
				return err
			}
		}
	}
	return nil
}
