// Command tsmoctl is the command-line client of the tsmod solver daemon.
//
//	tsmoctl -server localhost:8080 health
//	tsmoctl submit -class R1 -n 100 -alg asynchronous -procs 3 -evals 50000
//	tsmoctl submit -instance r101.txt -wait
//	tsmoctl status j000001
//	tsmoctl events j000001          # follow the SSE stream
//	tsmoctl result j000001 > front.json
//	tsmoctl mutate -cancel 17 j000001
//	tsmoctl mutate -script rush-hour.json j000001
//	tsmoctl cancel j000001
//	tsmoctl list
//
// Against a multi-tenant daemon, -token authenticates every request and
// tenants shows the per-tenant lanes, quotas and counters (it works
// against a coordinator too, which sums its live members):
//
//	tsmoctl -token k-acme-1 submit -class R1 -n 100 -priority 5 -deadline 30
//	tsmoctl -token k-acme-1 tenants
//	tsmoctl health                  # liveness and readiness, side by side
//
// Pointed at a coordinator (tsmod -cluster-listen), submit fans a job out
// across the cluster and cluster inspects membership:
//
//	tsmoctl -server coord:8080 submit -class R1 -n 400 -cluster-share -shards 3 -wait
//	tsmoctl -server coord:8080 cluster members
//	tsmoctl -server coord:8080 cluster status c000001
package main

import (
	"bufio"
	"bytes"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/cluster"
	"repro/internal/dynamic"
	"repro/internal/service"
	"repro/internal/vrptw"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tsmoctl:", err)
		os.Exit(1)
	}
}

const usage = `usage: tsmoctl [-server host:port] <command> [flags]

commands:
  submit   submit a job (generator or Solomon-file instance)
  status   print a job's status, live front and quality metrics
  events   follow a job's event stream (SSE)
  result   print a finished job's front as a result file
  mutate   mutate a live job's instance (or replay a timed script)
  cancel   cancel a job
  list     list retained jobs, grouped by tenant
  health   print the daemon's liveness and readiness snapshots
  tenants  per-tenant lanes, quotas and counters (daemon or coordinator)
  cluster  coordinator queries: cluster members | status <id> | result <id>
`

// run parses the global flags and dispatches the subcommand. Split from
// main (with an injectable output) for the client tests.
func run(args []string, out io.Writer) error {
	global := flag.NewFlagSet("tsmoctl", flag.ContinueOnError)
	server := global.String("server", "localhost:8080", "tsmod address (host:port)")
	token := global.String("token", "", "tenant API key, sent as Authorization: Bearer on every request")
	version := global.Bool("version", false, "print the version and exit")
	global.Usage = func() {
		fmt.Fprint(global.Output(), usage)
		global.PrintDefaults()
	}
	if err := global.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, buildinfo.Version())
		return nil
	}
	rest := global.Args()
	if len(rest) == 0 {
		global.Usage()
		return fmt.Errorf("missing command")
	}
	c := client{base: "http://" + *server, out: out, token: *token}
	cmd, rest := rest[0], rest[1:]
	switch cmd {
	case "submit":
		return c.submit(rest)
	case "status":
		return c.jobGet(rest, "status", "")
	case "result":
		return c.jobGet(rest, "result", "/result")
	case "mutate":
		return c.mutate(rest)
	case "events":
		return c.events(rest)
	case "cancel":
		return c.cancel(rest)
	case "list":
		return c.list()
	case "health":
		return c.health()
	case "tenants":
		return c.tenants()
	case "cluster":
		return c.cluster(rest)
	default:
		global.Usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

type client struct {
	base  string
	out   io.Writer
	token string
}

// newReq builds a request against the daemon, attaching the tenant
// token (when set) and a JSON content type (when there is a body).
// Every request path funnels through here so -token covers them all.
func (c *client) newReq(method, path string, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	return req, nil
}

// get pretty-prints the JSON body of one GET endpoint.
func (c *client) get(path string) error {
	resp, err := c.getResp(path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return c.printJSON(resp)
}

func (c *client) getResp(path string) (*http.Response, error) {
	req, err := c.newReq(http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

// printJSON re-indents a JSON response, surfacing API errors as errors.
func (c *client) printJSON(resp *http.Response) error {
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return apiError(resp, body)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(body), "", "  "); err != nil {
		buf.Write(body)
	}
	fmt.Fprintln(c.out, buf.String())
	return nil
}

func apiError(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))
}

func (c *client) submit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	var spec service.JobSpec
	instFile := fs.String("instance", "", "Solomon-format instance file (overrides -class/-n)")
	fs.StringVar(&spec.Instance.Class, "class", "", "generated instance class (R1, C1, RC1, R2, C2, RC2)")
	fs.IntVar(&spec.Instance.N, "n", 100, "generated instance size (customers)")
	fs.Uint64Var(&spec.Instance.Seed, "instance-seed", 1, "generated instance seed")
	fs.StringVar(&spec.Algorithm, "alg", "sequential", "algorithm variant")
	fs.IntVar(&spec.Processors, "procs", 0, "processor count (0 = variant default)")
	fs.Uint64Var(&spec.Seed, "seed", 1, "run seed")
	fs.IntVar(&spec.MaxEvaluations, "evals", 20000, "evaluation budget")
	fs.Float64Var(&spec.MaxSeconds, "max-seconds", 0, "in-run runtime budget (0 = none)")
	fs.Float64Var(&spec.WallSeconds, "wall", 0, "real-time deadline in seconds (0 = server default)")
	fs.IntVar(&spec.GranularK, "granular", 0, "granular neighborhoods: draw moves from the k-nearest arc graph (0 = full)")
	fs.IntVar(&spec.EvalWorkers, "eval-workers", 0, "shard candidate delta evaluation over this many goroutines (0/1 = serial)")
	fs.StringVar(&spec.Backend, "backend", "", "runtime backend: sim or goroutine (default sim)")
	fs.IntVar(&spec.SampleEvery, "sample", 0, "record convergence samples every this many evaluations")
	fs.StringVar(&spec.IdempotencyKey, "idem", "", "idempotency key (default: a fresh random key per invocation)")
	fs.IntVar(&spec.Priority, "priority", 0, "lane priority within the tenant (clamped to the tenant policy's max)")
	fs.Float64Var(&spec.DeadlineSeconds, "deadline", 0, "queue-wait deadline in seconds; jobs still queued past it are shed (0 = none)")
	clusterShare := fs.Bool("cluster-share", false, "coordinator submit: shards exchange archive-entering solutions across nodes")
	shards := fs.Int("shards", 0, "coordinator submit: fan the job out to this many sibling shards")
	fs.IntVar(&spec.ShareEvery, "share-every", 0, "cluster-share epoch length in master iterations (0 = solver default)")
	wait := fs.Bool("wait", false, "follow the event stream until the job finishes")
	retries := fs.Int("retries", 4, "transient-failure retries (429/503/5xx/network), exponential backoff")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *instFile != "" {
		text, err := os.ReadFile(*instFile)
		if err != nil {
			return err
		}
		spec.Instance.Solomon = string(text)
		spec.Instance.Class = ""
	} else if spec.Instance.Class == "" {
		spec.Instance.Class = "R1"
	}
	if spec.IdempotencyKey == "" {
		// A fresh key per invocation makes the retry loop below safe: a
		// resubmission whose first attempt actually landed returns the
		// job already created instead of a duplicate.
		spec.IdempotencyKey = randomKey()
	}
	toCluster := *clusterShare || *shards > 0
	var payload any = spec
	if toCluster {
		// A coordinator request: the same spec inside the cluster envelope.
		// The coordinator assigns per-shard seeds, budgets and share fields.
		payload = cluster.JobRequest{JobSpec: spec, ClusterShare: *clusterShare, Shards: *shards}
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	resp, err := doWithRetry(func() (*http.Request, error) {
		return c.newReq(http.MethodPost, "/v1/jobs", body)
	}, *retries, transientStatus)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return apiError(resp, raw)
	}
	var sub service.SubmitResponse
	if err := json.Unmarshal(raw, &sub); err != nil {
		return fmt.Errorf("decoding submit response: %w", err)
	}
	fmt.Fprintf(c.out, "job %s %s\n", sub.ID, sub.State)
	if *wait {
		if toCluster {
			if err := c.followCluster(sub.ID); err != nil {
				return err
			}
		} else if err := c.follow(sub.ID, 0); err != nil {
			return err
		}
		return c.waitResult(sub.ID, *retries)
	}
	return nil
}

// waitResult fetches a finished job's result and prints it. A 409 —
// the terminal event raced the result persistence, or a cluster shard
// is still merging — is transient here and retried honoring the
// server's Retry-After hint, exactly like the submit path honors it on
// 429/503.
func (c *client) waitResult(id string, retries int) error {
	resp, err := doWithRetry(func() (*http.Request, error) {
		return c.newReq(http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	}, retries, func(code int) bool { return code == http.StatusConflict || transientStatus(code) })
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return c.printJSON(resp)
}

// followCluster polls a coordinator job until it is terminal, printing
// aggregate state transitions and a final per-shard summary. Coordinators
// have no SSE stream — shard events live on the member daemons — so the
// cluster wait is a status poll.
func (c *client) followCluster(id string) error {
	last := ""
	for {
		resp, err := c.getResp("/v1/jobs/" + id)
		if err != nil {
			time.Sleep(time.Second)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			time.Sleep(time.Second)
			continue
		}
		if resp.StatusCode >= 400 {
			return apiError(resp, body)
		}
		var st struct {
			State  service.State `json:"state"`
			Shards []struct {
				Shard   int           `json:"shard"`
				Node    string        `json:"node"`
				State   service.State `json:"state"`
				Attempt int           `json:"attempt"`
			} `json:"shards"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return fmt.Errorf("decoding cluster status: %w", err)
		}
		if string(st.State) != last {
			last = string(st.State)
			fmt.Fprintf(c.out, "cluster job %s %s\n", id, st.State)
		}
		if st.State.Terminal() {
			for _, sh := range st.Shards {
				fmt.Fprintf(c.out, "  shard %d %s on %s (attempt %d)\n",
					sh.Shard, sh.State, sh.Node, sh.Attempt)
			}
			return nil
		}
		time.Sleep(500 * time.Millisecond)
	}
}

// cluster dispatches the coordinator-only queries.
func (c *client) cluster(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: tsmoctl cluster members | status <id> | result <id>")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "members":
		return c.get("/v1/members")
	case "status":
		return c.jobGet(rest, "cluster status", "")
	case "result":
		return c.jobGet(rest, "cluster result", "/result")
	default:
		return fmt.Errorf("unknown cluster subcommand %q (want members, status or result)", sub)
	}
}

// list prints the retained jobs grouped by tenant: one header line per
// tenant lane, then its jobs with priority, state and instance. Jobs
// predating multi-tenancy (no tenant field) group under "anonymous".
func (c *client) list() error {
	resp, err := c.getResp("/v1/jobs")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return apiError(resp, body)
	}
	var lst struct {
		Jobs []service.Status `json:"jobs"`
	}
	if err := json.Unmarshal(body, &lst); err != nil {
		return fmt.Errorf("decoding job list: %w", err)
	}
	byTenant := map[string][]service.Status{}
	for _, st := range lst.Jobs {
		tn := st.Tenant
		if tn == "" {
			tn = "anonymous"
		}
		byTenant[tn] = append(byTenant[tn], st)
	}
	tenants := make([]string, 0, len(byTenant))
	for tn := range byTenant {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		jobs := byTenant[tn]
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
		fmt.Fprintf(c.out, "tenant %s (%d jobs)\n", tn, len(jobs))
		for _, st := range jobs {
			line := fmt.Sprintf("  %s  %-9s prio=%d  %s %s/p%d evals=%d",
				st.ID, st.State, st.Priority, st.Instance, st.Algorithm, st.Processors, st.Evaluations)
			if st.Error != "" {
				line += "  error: " + st.Error
			}
			fmt.Fprintln(c.out, line)
		}
	}
	if len(tenants) == 0 {
		fmt.Fprintln(c.out, "no jobs")
	}
	return nil
}

// health prints liveness (/v1/healthz — process up, always 200) and
// readiness (/v1/readyz — accepting new work, 503 with reasons while
// draining, recovering or shedding) side by side. A not-ready daemon is
// not an error here: the point of the split is seeing both.
func (c *client) health() error {
	if err := c.get("/v1/healthz"); err != nil {
		return err
	}
	resp, err := c.getResp("/v1/readyz")
	if err != nil {
		// Coordinators predating /readyz (or pointing health at one) have
		// no readiness endpoint; liveness alone is the answer there.
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusNotFound {
		return nil
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(body), "", "  "); err != nil {
		buf.Write(body)
	}
	fmt.Fprintln(c.out, buf.String())
	return nil
}

// tenants renders the per-tenant view — lanes, quotas, counters — as a
// table. The daemon and the coordinator serve the same shape on
// /v1/tenants, so this works against either address.
func (c *client) tenants() error {
	resp, err := c.getResp("/v1/tenants")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		return apiError(resp, body)
	}
	var rep struct {
		Tenants map[string]service.TenantStatus `json:"tenants"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return fmt.Errorf("decoding tenants: %w", err)
	}
	names := make([]string, 0, len(rep.Tenants))
	for n := range rep.Tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(c.out, "%-16s %6s %6s %7s %9s %8s %12s\n",
		"TENANT", "WEIGHT", "QUEUED", "RUNNING", "SUBMITTED", "REJECTED", "RATE(sub/mut)")
	for _, n := range names {
		ts := rep.Tenants[n]
		// An idle tenant has no scheduler lane yet; show its configured
		// weight rather than the lane's zero value.
		weight := ts.Lane.Weight
		if weight == 0 {
			weight = ts.Policy.Weight
		}
		fmt.Fprintf(c.out, "%-16s %6d %6d %7d %9d %8d %8g/%g\n",
			n, weight, ts.Lane.Queued, ts.Lane.Running,
			ts.Submitted, ts.Rejected, ts.Policy.SubmitRate, ts.Policy.MutateRate)
	}
	return nil
}

// mutate schedules live instance mutations on a running job, or — with
// -script — replays a timed scenario of them. Each flag contributes one
// mutation; several may be combined into a single batch, which lands on
// one epoch (checkpoint barrier) atomically.
func (c *client) mutate(args []string) error {
	fs := flag.NewFlagSet("mutate", flag.ContinueOnError)
	epoch := fs.Int("epoch", 0, "pin the batch to this checkpoint barrier (0 = the next one the run reaches)")
	cancelC := fs.Int("cancel", 0, "cancel this customer (index on the current instance)")
	add := fs.String("add", "", "add a customer: x,y,demand,ready,due,service")
	window := fs.String("window", "", "shift a time window: customer,ready,due")
	demand := fs.String("demand", "", "update a demand: customer,value")
	script := fs.String("script", "", "timed replay: JSON file of {at_seconds, epoch, mutations} entries")
	retries := fs.Int("retries", 4, "transient-failure retries (429/503/5xx/network), exponential backoff")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := jobID("mutate", fs.Args())
	if err != nil {
		return err
	}
	if *script != "" {
		return c.mutateScript(id, *script, *retries)
	}
	var muts []dynamic.Mutation
	if *cancelC > 0 {
		muts = append(muts, dynamic.Mutation{Version: dynamic.Version, Op: dynamic.CancelCustomer, Customer: *cancelC})
	}
	if *add != "" {
		f, err := parseFloats("-add", *add, 6)
		if err != nil {
			return err
		}
		site := vrptw.Site{X: f[0], Y: f[1], Demand: f[2], Ready: f[3], Due: f[4], Service: f[5]}
		muts = append(muts, dynamic.Mutation{Version: dynamic.Version, Op: dynamic.AddCustomer, Site: &site})
	}
	if *window != "" {
		f, err := parseFloats("-window", *window, 3)
		if err != nil {
			return err
		}
		muts = append(muts, dynamic.Mutation{Version: dynamic.Version, Op: dynamic.ShiftWindow,
			Customer: int(f[0]), Ready: f[1], Due: f[2]})
	}
	if *demand != "" {
		f, err := parseFloats("-demand", *demand, 2)
		if err != nil {
			return err
		}
		muts = append(muts, dynamic.Mutation{Version: dynamic.Version, Op: dynamic.UpdateDemand,
			Customer: int(f[0]), Demand: f[1]})
	}
	if len(muts) == 0 {
		return fmt.Errorf("mutate: provide at least one of -cancel, -add, -window, -demand (or -script)")
	}
	return c.sendMutations(id, *epoch, muts, *retries)
}

// scriptEntry is one step of a timed mutation replay script: a batch of
// mutations dispatched at_seconds after the replay starts, optionally
// pinned to an explicit epoch so the scenario replays deterministically.
type scriptEntry struct {
	AtSeconds float64            `json:"at_seconds"`
	Epoch     int                `json:"epoch,omitempty"`
	Mutations []dynamic.Mutation `json:"mutations"`
}

// mutateScript replays a timed mutation scenario against a live job:
// entries fire in at_seconds order, each as one PATCH batch.
func (c *client) mutateScript(id, path string, retries int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []scriptEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("parsing script %s: %w", path, err)
	}
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].AtSeconds < entries[j].AtSeconds })
	start := time.Now()
	for i, e := range entries {
		if d := time.Duration(e.AtSeconds*float64(time.Second)) - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		if err := c.sendMutations(id, e.Epoch, e.Mutations, retries); err != nil {
			return fmt.Errorf("script entry %d (t=%gs): %w", i, e.AtSeconds, err)
		}
	}
	return nil
}

// sendMutations PATCHes one mutation batch and prints the server's
// answer (the epoch the batch landed on).
func (c *client) sendMutations(id string, epoch int, muts []dynamic.Mutation, retries int) error {
	body, err := json.Marshal(service.MutateRequest{Epoch: epoch, Mutations: muts})
	if err != nil {
		return err
	}
	resp, err := doWithRetry(func() (*http.Request, error) {
		return c.newReq(http.MethodPatch, "/v1/jobs/"+id+"/instance", body)
	}, retries, transientStatus)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return c.printJSON(resp)
}

// parseFloats splits a comma-separated flag value into exactly n floats.
func parseFloats(flagName, v string, n int) ([]float64, error) {
	parts := strings.Split(v, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("mutate: %s wants %d comma-separated values, got %d", flagName, n, len(parts))
	}
	out := make([]float64, n)
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("mutate: %s value %q: %w", flagName, p, err)
		}
		out[i] = f
	}
	return out, nil
}

// randomKey generates a fresh idempotency key.
func randomKey() string {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Fall back to a time-based key; uniqueness per invocation is all
		// the retry loop needs.
		return fmt.Sprintf("t%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// doWithRetry is the one retry loop every polling path shares: it sends
// freshly built requests until one returns a status transient() rejects,
// backing off with capped exponential delay plus jitter between
// attempts. A Retry-After header on a transient response overrides the
// computed delay. The request is rebuilt per attempt so bodies replay
// from the start.
func doWithRetry(build func() (*http.Request, error), retries int, transient func(int) bool) (*http.Response, error) {
	const (
		baseDelay = 250 * time.Millisecond
		maxDelay  = 5 * time.Second
	)
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := build()
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		switch {
		case err == nil && !transient(resp.StatusCode):
			return resp, nil
		case err == nil:
			lastErr = fmt.Errorf("server answered %s", resp.Status)
			if attempt >= retries {
				return resp, nil // surface the final transient response
			}
			delay := retryDelay(attempt, baseDelay, maxDelay)
			if d := retryAfter(resp); d > 0 {
				delay = d
			}
			resp.Body.Close()
			time.Sleep(delay)
		default:
			lastErr = err
			if attempt >= retries {
				return nil, fmt.Errorf("after %d attempts: %w", attempt+1, lastErr)
			}
			time.Sleep(retryDelay(attempt, baseDelay, maxDelay))
		}
	}
}

// transientStatus reports whether a response is worth retrying.
func transientStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// retryDelay is capped exponential backoff with full jitter.
func retryDelay(attempt int, base, max time.Duration) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	return time.Duration(rand.Int63n(int64(d))) + base/2
}

// retryAfter parses a whole-second Retry-After header, 0 when absent.
func retryAfter(resp *http.Response) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// jobID extracts the single job-id argument of a subcommand.
func jobID(name string, args []string) (string, error) {
	if len(args) != 1 || strings.HasPrefix(args[0], "-") {
		return "", fmt.Errorf("usage: tsmoctl %s <job-id>", name)
	}
	return args[0], nil
}

func (c *client) jobGet(args []string, name, suffix string) error {
	id, err := jobID(name, args)
	if err != nil {
		return err
	}
	return c.get("/v1/jobs/" + id + suffix)
}

func (c *client) cancel(args []string) error {
	id, err := jobID("cancel", args)
	if err != nil {
		return err
	}
	req, err := c.newReq(http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return c.printJSON(resp)
}

func (c *client) events(args []string) error {
	fs := flag.NewFlagSet("events", flag.ContinueOnError)
	after := fs.Int("after", 0, "replay events with seq greater than this")
	if err := fs.Parse(args); err != nil {
		return err
	}
	id, err := jobID("events", fs.Args())
	if err != nil {
		return err
	}
	return c.follow(id, *after)
}

// follow prints a job's SSE stream, one "seq name json-fields" line per
// event, until the job is terminal. A dropped connection — daemon restart,
// network blip — is not fatal: follow reconnects with Last-Event-ID set to
// the last event it printed, so the stream resumes without gaps or
// duplicates. It gives up after several consecutive attempts that deliver
// nothing, or on a non-retryable API error (404 after eviction, ...).
func (c *client) follow(id string, after int) error {
	const maxIdleRetries = 5
	failures := 0
	var lastErr error
	for failures <= maxIdleRetries {
		last, terminal, err := c.streamOnce(id, after)
		if terminal {
			return nil
		}
		if err != nil {
			var pe *permanentError
			if errors.As(err, &pe) {
				return pe.err
			}
			lastErr = err
		}
		if last > after {
			failures = 0 // the connection made progress; keep following
			after = last
		} else {
			failures++
		}
		time.Sleep(retryDelay(failures, 250*time.Millisecond, 5*time.Second))
	}
	if lastErr != nil {
		return fmt.Errorf("event stream kept failing: %w", lastErr)
	}
	return fmt.Errorf("event stream for %s ended without a terminal event", id)
}

// permanentError marks an API failure follow must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

// streamOnce runs one SSE connection. It returns the last event Seq it
// printed, whether a terminal lifecycle event (done/failed/canceled) was
// seen — the server ends the stream right after delivering it — and the
// transport error that cut the stream short, if any.
func (c *client) streamOnce(id string, after int) (last int, terminal bool, err error) {
	last = after
	req, err := c.newReq(http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return last, false, &permanentError{err}
	}
	if after > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(after))
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := (&http.Client{Timeout: 0}).Do(req)
	if err != nil {
		return last, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body) //nolint:errcheck // best-effort error body
		err := apiError(resp, body)
		if transientStatus(resp.StatusCode) {
			return last, false, err
		}
		return last, false, &permanentError{err}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // ids, event names and keep-alives; data has it all
		}
		var ev service.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue
		}
		fields, err := json.Marshal(ev.Fields)
		if err != nil {
			fields = nil
		}
		fmt.Fprintf(c.out, "%6d %s %-16s %s\n", ev.Seq, ev.TS.Format(time.TimeOnly), ev.Name, fields)
		last = ev.Seq
		switch ev.Name {
		case string(service.StateDone), string(service.StateFailed), string(service.StateCanceled):
			terminal = true
		}
	}
	return last, terminal, sc.Err()
}
