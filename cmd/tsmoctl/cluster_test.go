package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// TestClientAgainstCluster points tsmoctl at a real coordinator fronting
// two in-process daemons over loopback HTTP: submit with -cluster-share
// fans the job out, -wait polls the aggregate status to done, and the
// cluster subcommand inspects membership, status and the merged result.
func TestClientAgainstCluster(t *testing.T) {
	// The node services dial shares through the coordinator, whose URL is
	// only known once its listener is up — so the dialer resolves the base
	// URL lazily at first use (after coordURL is set below).
	var mu sync.Mutex
	var coordURL string
	dial := func(group string, shard, shards int, tel *telemetry.Telemetry) (service.ShareGatherer, error) {
		mu.Lock()
		base := coordURL
		mu.Unlock()
		return cluster.Dialer(base, http.DefaultClient)(group, shard, shards, tel)
	}

	var nodes []string
	for i := 0; i < 2; i++ {
		svc := service.New(service.Config{Workers: 2, CheckpointEvery: 10, ShareDial: dial})
		srv := httptest.NewServer(svc.Handler())
		t.Cleanup(func() {
			srv.Close()
			svc.Close()
		})
		nodes = append(nodes, srv.URL)
	}

	coord := cluster.New(cluster.Config{Peers: nodes, RetryAfter: time.Second})
	csrv := httptest.NewServer(coord.Handler())
	t.Cleanup(csrv.Close)
	mu.Lock()
	coordURL = csrv.URL
	mu.Unlock()

	// The coordinator's tick loop (tsmod -cluster-listen runs the same
	// thing on a timer).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				coord.Tick()
			}
		}
	}()
	t.Cleanup(func() { close(stop); wg.Wait() })

	addr := strings.TrimPrefix(csrv.URL, "http://")
	out, err := ctl(t, addr, "submit",
		"-class", "R1", "-n", "60", "-evals", "6000", "-seed", "5",
		"-cluster-share", "-shards", "2", "-share-every", "5", "-wait")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "job c000001 queued") {
		t.Errorf("cluster submit output missing acceptance line:\n%s", out)
	}
	if !strings.Contains(out, "cluster job c000001 done") {
		t.Errorf("cluster wait never reported done:\n%s", out)
	}
	if !strings.Contains(out, "shard 0 done on ") || !strings.Contains(out, "shard 1 done on ") {
		t.Errorf("cluster wait missing shard summary:\n%s", out)
	}

	out, err = ctl(t, addr, "cluster", "members")
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range nodes {
		if !strings.Contains(out, node) {
			t.Errorf("cluster members missing %s:\n%s", node, out)
		}
	}

	out, err = ctl(t, addr, "cluster", "status", "c000001")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"done"`) {
		t.Errorf("cluster status not done:\n%s", out)
	}

	out, err = ctl(t, addr, "cluster", "result", "c000001")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"solutions"`) {
		t.Errorf("cluster result missing solutions:\n%s", out)
	}

	if _, err := ctl(t, addr, "cluster", "bogus"); err == nil {
		t.Error("unknown cluster subcommand did not error")
	}
}
