package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/tenant"
)

// ctl runs one tsmoctl invocation against the test server and returns its
// stdout.
func ctl(t *testing.T, server string, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(append([]string{"-server", server}, args...), &out)
	return out.String(), err
}

func TestClientAgainstInProcessDaemon(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, Version: "ctl-test"})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	addr := strings.TrimPrefix(srv.URL, "http://")

	out, err := ctl(t, addr, "health")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ctl-test"`) {
		t.Errorf("health output missing version: %s", out)
	}

	// submit -wait follows the stream to completion and prints events.
	out, err = ctl(t, addr, "submit", "-class", "R1", "-n", "40", "-evals", "1500", "-wait")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "job j") || !strings.Contains(out, "archive_accept") || !strings.Contains(out, "done") {
		t.Errorf("submit -wait output unexpected:\n%s", out)
	}
	id := strings.Fields(out)[1]

	out, err = ctl(t, addr, "status", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"done"`) || !strings.Contains(out, `"hypervolume"`) {
		t.Errorf("status output unexpected:\n%s", out)
	}

	out, err = ctl(t, addr, "result", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"solutions"`) {
		t.Errorf("result output unexpected:\n%s", out)
	}

	out, err = ctl(t, addr, "events", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "queued") {
		t.Errorf("events replay missing lifecycle events:\n%s", out)
	}

	out, err = ctl(t, addr, "list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, id) {
		t.Errorf("list output missing %s:\n%s", id, out)
	}

	// cancel on a terminal job is a no-op that reports the final state.
	out, err = ctl(t, addr, "cancel", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"done"`) {
		t.Errorf("cancel output unexpected:\n%s", out)
	}

	if _, err := ctl(t, addr, "status", "j999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("status of unknown job: %v; want 404 error", err)
	}
	if _, err := ctl(t, addr, "bogus"); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if _, err := ctl(t, addr); err == nil {
		t.Error("missing subcommand accepted")
	}
}

func TestMutateCommand(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueDepth: 4, MaxEvaluations: -1, CheckpointEvery: 3})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	addr := strings.TrimPrefix(srv.URL, "http://")

	// A long blocker occupies the single worker so the target stays queued
	// and the mutation epochs land deterministically.
	out, err := ctl(t, addr, "submit", "-class", "R1", "-n", "40", "-evals", "50000000")
	if err != nil {
		t.Fatal(err)
	}
	blocker := strings.Fields(out)[1]
	out, err = ctl(t, addr, "submit", "-class", "R1", "-n", "40", "-evals", "60000")
	if err != nil {
		t.Fatal(err)
	}
	target := strings.Fields(out)[1]

	// Flag form: two mutations combined into one batch on the next epoch.
	out, err = ctl(t, addr, "mutate", "-cancel", "7", "-demand", "9,5", target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"epoch"`) {
		t.Errorf("mutate output missing the landed epoch:\n%s", out)
	}

	// Script form: a timed replay pinned to an explicit epoch.
	script := filepath.Join(t.TempDir(), "scenario.json")
	entries := `[{"at_seconds": 0, "epoch": 3, "mutations": [{"version": 1, "op": "cancel_customer", "customer": 3}]}]`
	if err := os.WriteFile(script, []byte(entries), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl(t, addr, "mutate", "-script", script, target); err != nil {
		t.Fatal(err)
	}

	if _, err := ctl(t, addr, "mutate", target); err == nil {
		t.Error("mutate with no mutation flags accepted")
	}

	if _, err := ctl(t, addr, "cancel", blocker); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	var st service.Status
	for {
		out, err = ctl(t, addr, "status", target)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(out), &st); err != nil {
			t.Fatalf("status output is not JSON: %v\n%s", err, out)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("target never finished; last status:\n%s", out)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != service.StateDone {
		t.Fatalf("target state %s (%s), want done", st.State, st.Error)
	}
	if st.MutationEpochs != 2 || st.MutationsApplied != 3 || st.MutationsRejected != 0 {
		t.Errorf("mutation counters: epochs %d applied %d rejected %d, want 2/3/0",
			st.MutationEpochs, st.MutationsApplied, st.MutationsRejected)
	}
	if st.LastMutationEpoch != 3 {
		t.Errorf("last mutation epoch %d, want 3", st.LastMutationEpoch)
	}
}

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Error("-version printed nothing")
	}
}

// TestTenantCommands drives the tenant-facing CLI surfaces against an
// in-process multi-tenant daemon: -token authentication on submission,
// the tenant-grouped list view, the tenants table, the liveness +
// readiness health view, and the 401 surface for a bad key.
func TestTenantCommands(t *testing.T) {
	reg := tenant.NewRegistry(nil)
	reg.Add(tenant.Policy{Name: "acme", Weight: 3, SubmitRate: 2.5}, "k-acme")
	svc := service.New(service.Config{Workers: 1, QueueDepth: 8, MaxEvaluations: -1, Tenants: reg})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	addr := strings.TrimPrefix(srv.URL, "http://")

	if _, err := ctl(t, addr, "-token", "k-acme", "submit",
		"-class", "R1", "-n", "40", "-evals", "1500", "-wait"); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl(t, addr, "submit",
		"-class", "R1", "-n", "40", "-evals", "1500", "-wait"); err != nil {
		t.Fatal(err)
	}

	out, err := ctl(t, addr, "list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tenant acme (1 jobs)") || !strings.Contains(out, "tenant anonymous (1 jobs)") {
		t.Errorf("list does not group by tenant:\n%s", out)
	}

	out, err = ctl(t, addr, "tenants")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "TENANT") || !strings.Contains(out, "SUBMITTED") {
		t.Errorf("tenants table missing its header:\n%s", out)
	}
	var acmeRow string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "acme") {
			acmeRow = line
		}
	}
	f := strings.Fields(acmeRow)
	if len(f) < 6 || f[1] != "3" || f[4] != "1" || !strings.HasPrefix(f[6], "2.5/") {
		t.Errorf("acme row wrong (want weight 3, submitted 1, rate 2.5/...): %q", acmeRow)
	}

	out, err = ctl(t, addr, "health")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ready": true`) {
		t.Errorf("health does not report readiness:\n%s", out)
	}

	if _, err := ctl(t, addr, "-token", "nope", "list"); err == nil || !strings.Contains(err.Error(), "401") {
		t.Errorf("bad token on list: %v; want a 401 error", err)
	}
}
