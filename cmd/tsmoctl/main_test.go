package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/service"
)

// ctl runs one tsmoctl invocation against the test server and returns its
// stdout.
func ctl(t *testing.T, server string, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(append([]string{"-server", server}, args...), &out)
	return out.String(), err
}

func TestClientAgainstInProcessDaemon(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, Version: "ctl-test"})
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	addr := strings.TrimPrefix(srv.URL, "http://")

	out, err := ctl(t, addr, "health")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"ctl-test"`) {
		t.Errorf("health output missing version: %s", out)
	}

	// submit -wait follows the stream to completion and prints events.
	out, err = ctl(t, addr, "submit", "-class", "R1", "-n", "40", "-evals", "1500", "-wait")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "job j") || !strings.Contains(out, "archive_accept") || !strings.Contains(out, "done") {
		t.Errorf("submit -wait output unexpected:\n%s", out)
	}
	id := strings.Fields(out)[1]

	out, err = ctl(t, addr, "status", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"done"`) || !strings.Contains(out, `"hypervolume"`) {
		t.Errorf("status output unexpected:\n%s", out)
	}

	out, err = ctl(t, addr, "result", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"solutions"`) {
		t.Errorf("result output unexpected:\n%s", out)
	}

	out, err = ctl(t, addr, "events", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "queued") {
		t.Errorf("events replay missing lifecycle events:\n%s", out)
	}

	out, err = ctl(t, addr, "list")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, id) {
		t.Errorf("list output missing %s:\n%s", id, out)
	}

	// cancel on a terminal job is a no-op that reports the final state.
	out, err = ctl(t, addr, "cancel", id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"done"`) {
		t.Errorf("cancel output unexpected:\n%s", out)
	}

	if _, err := ctl(t, addr, "status", "j999999"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("status of unknown job: %v; want 404 error", err)
	}
	if _, err := ctl(t, addr, "bogus"); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if _, err := ctl(t, addr); err == nil {
		t.Error("missing subcommand accepted")
	}
}

func TestVersionFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-version"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(out.String()) == "" {
		t.Error("-version printed nothing")
	}
}
