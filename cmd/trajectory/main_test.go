package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTrajectoryRun(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fig1.csv")
	if err := run(30, 3, 400, 1, out, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 {
		t.Fatalf("only %d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "iteration,born,distance") {
		t.Errorf("bad header %q", lines[0])
	}
}

func TestTrajectoryRunWithPlot(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fig1.csv")
	if err := run(30, 3, 300, 2, out, true); err != nil {
		t.Fatal(err)
	}
}
