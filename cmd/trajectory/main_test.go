package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTrajectoryRun(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fig1.csv")
	if err := run(30, 3, 400, 1, out, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 10 {
		t.Fatalf("only %d CSV lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "iteration,born,distance") {
		t.Errorf("bad header %q", lines[0])
	}
}

func TestTrajectoryRunWithPlot(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "fig1.csv")
	if err := run(30, 3, 300, 2, out, true); err != nil {
		t.Fatal(err)
	}
}

// TestTrajectoryZeroIterationRun pins the degenerate budgets: a
// one-evaluation run stops after construction — the CSV still carries the
// header and the construction point, and the ASCII plot renders the
// near-empty trajectory without panicking — while a zero budget is a
// clean validation error, not a crash.
func TestTrajectoryZeroIterationRun(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "tiny.csv")
	if err := run(30, 3, 1, 1, out, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if !strings.HasPrefix(lines[0], "iteration,born,distance") {
		t.Errorf("bad header %q", lines[0])
	}
	if len(lines) < 2 {
		t.Errorf("one-evaluation run wrote no trajectory points: %q", lines)
	}

	if err := run(30, 3, 0, 1, filepath.Join(dir, "zero.csv"), false); err == nil {
		t.Error("zero-evaluation budget did not report a validation error")
	} else if !strings.Contains(err.Error(), "MaxEvaluations") {
		t.Errorf("unexpected zero-budget error: %v", err)
	}
}
