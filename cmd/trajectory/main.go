// Command trajectory regenerates the data behind the paper's Figure 1: a
// search trajectory of the asynchronous TSMO in objective space, with each
// candidate tagged by the iteration its neighborhood was generated in and
// selected current solutions marked. The CSV can be plotted directly
// (distance vs. vehicles, colored by the born column).
//
//	trajectory -n 100 -procs 3 -evals 5000 -o figure1.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/viz"
)

func main() {
	var (
		n       = flag.Int("n", 100, "instance size (customers)")
		procs   = flag.Int("procs", 3, "processor count")
		evals   = flag.Int("evals", 5000, "evaluation budget")
		seed    = flag.Uint64("seed", 1, "run seed")
		out     = flag.String("o", "figure1.csv", "output CSV path (- for stdout)")
		plot    = flag.Bool("plot", false, "also draw an ASCII rendition of Figure 1")
		version = flag.Bool("version", false, "print the version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Version())
		return
	}

	if err := run(*n, *procs, *evals, *seed, *out, *plot); err != nil {
		fmt.Fprintln(os.Stderr, "trajectory:", err)
		os.Exit(1)
	}
}

func run(n, procs, evals int, seed uint64, out string, plot bool) error {
	traj, err := exp.RunFigure1(n, procs, evals, seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := traj.WriteCSV(w); err != nil {
		return err
	}
	if out != "-" {
		fmt.Printf("%d trajectory points written to %s\n", len(traj.Points), out)
	}
	if plot {
		if err := renderPlot(os.Stdout, traj); err != nil {
			return err
		}
	}
	return nil
}

// renderPlot draws the trajectory like the paper's Figure 1: candidate
// solutions as dots, stale candidates (born in an earlier iteration than
// they were considered, the asynchronous hallmark) as '+', and the
// selected current solutions as 'O', in the distance/tardiness plane.
func renderPlot(w *os.File, traj *core.Trajectory) error {
	var cand, stale, sel viz.Series
	cand = viz.Series{Name: "candidate", Glyph: '.'}
	stale = viz.Series{Name: "stale candidate", Glyph: '+'}
	sel = viz.Series{Name: "selected current", Glyph: 'O'}
	for _, p := range traj.Points {
		switch {
		case p.Selected:
			sel.X = append(sel.X, p.Obj.Distance)
			sel.Y = append(sel.Y, p.Obj.Tardiness)
		case p.Born < p.Iteration-1:
			stale.X = append(stale.X, p.Obj.Distance)
			stale.Y = append(stale.Y, p.Obj.Tardiness)
		default:
			cand.X = append(cand.X, p.Obj.Distance)
			cand.Y = append(cand.Y, p.Obj.Tardiness)
		}
	}
	s := &viz.Scatter{Width: 76, Height: 24, XLabel: "f1: total distance", YLabel: "f3: tardiness"}
	return s.Render(w, []viz.Series{cand, stale, sel})
}
