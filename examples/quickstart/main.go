// Quickstart: generate a 100-customer instance, run the sequential
// multiobjective Tabu Search, and print the resulting trade-off front and
// the best solution's routes.
package main

import (
	"fmt"
	"os"
	"sort"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A random-geometry instance with tight time windows, in the style
	// of Solomon's R1 class.
	in, err := repro.Generate(repro.GenConfig{Class: repro.R1, N: 100, Seed: 7})
	if err != nil {
		return err
	}
	fmt.Printf("instance %s: %d customers, fleet %d x %.0f capacity, horizon %.0f\n\n",
		in.Name, in.N(), in.Vehicles, in.Capacity, in.Horizon())

	cfg := repro.DefaultConfig()
	cfg.MaxEvaluations = 20000 // 1/5 of the paper's budget: seconds of real time
	cfg.Seed = 42

	res, err := repro.Solve(repro.Sequential, in, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("search finished: %d evaluations in %.0f simulated seconds\n\n",
		res.Evaluations, res.Elapsed)

	front := res.FeasibleFront()
	sort.Slice(front, func(i, j int) bool { return front[i].Obj.Distance < front[j].Obj.Distance })
	fmt.Println("non-dominated feasible solutions:")
	fmt.Printf("%12s %10s\n", "distance", "vehicles")
	for _, s := range front {
		fmt.Printf("%12.2f %10.0f\n", s.Obj.Distance, s.Obj.Vehicles)
	}
	if len(front) == 0 {
		return fmt.Errorf("no feasible solution found — increase the budget")
	}

	best := front[0]
	fmt.Printf("\nroutes of the shortest solution (%.2f):\n", best.Obj.Distance)
	for i, route := range best.Routes {
		fmt.Printf("  vehicle %2d (%2d stops, load %3.0f): depot", i+1, len(route), best.Load[i])
		for _, c := range route {
			fmt.Printf(" -> %d", c)
		}
		fmt.Println(" -> depot")
	}
	return nil
}
