// Fleetsizing demonstrates the paper's §II.C argument for the
// multiobjective formulation: instead of handing a dispatcher one tour
// plan, the search produces several Pareto-optimal (distance, vehicles)
// trade-offs, and the dispatcher decides with their own cost structure —
// here a yearly fixed cost per van against a per-kilometer rate.
package main

import (
	"fmt"
	"os"
	"sort"

	"repro"
)

const (
	vanFixedCost = 110.0 // EUR per van per day (lease, driver, insurance)
	perKmCost    = 0.55  // EUR per km (fuel, wear)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsizing:", err)
		os.Exit(1)
	}
}

func run() error {
	// A clustered delivery area with wide time windows: the regime where
	// distance and fleet size genuinely trade off.
	in, err := repro.Generate(repro.GenConfig{Class: repro.C2, N: 120, Seed: 11})
	if err != nil {
		return err
	}
	fmt.Printf("depot with %d customers, up to %d vans of capacity %.0f\n\n",
		in.N(), in.Vehicles, in.Capacity)

	// The collaborative multisearch is the paper's best variant for
	// solution quality, especially at finding low-vehicle solutions.
	cfg := repro.DefaultConfig()
	cfg.MaxEvaluations = 15000
	cfg.Processors = 4
	cfg.Seed = 3

	res, err := repro.Solve(repro.Collaborative, in, cfg)
	if err != nil {
		return err
	}

	front := res.FeasibleFront()
	if len(front) == 0 {
		return fmt.Errorf("no feasible plan found — increase the budget")
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Obj.Vehicles < front[j].Obj.Vehicles })

	fmt.Println("Pareto-optimal delivery plans (pick one):")
	fmt.Printf("%8s %12s %14s %14s %14s\n", "vans", "distance", "van cost", "driving cost", "total/day")
	bestTotal, bestIdx := 0.0, -1
	for i, s := range front {
		vans := s.Obj.Vehicles
		dist := s.Obj.Distance
		fixed := vans * vanFixedCost
		driving := dist * perKmCost
		total := fixed + driving
		fmt.Printf("%8.0f %12.1f %13.2f€ %13.2f€ %13.2f€\n", vans, dist, fixed, driving, total)
		if bestIdx < 0 || total < bestTotal {
			bestTotal, bestIdx = total, i
		}
	}
	fmt.Printf("\nwith a fixed cost of %.0f€/van and %.2f€/km, plan #%d (%.0f vans) is cheapest at %.2f€/day\n",
		vanFixedCost, perKmCost, bestIdx+1, front[bestIdx].Obj.Vehicles, bestTotal)
	fmt.Println("a dispatcher with pricier vans or cheaper fuel would pick differently —")
	fmt.Println("that choice is exactly what the multiobjective front preserves.")
	return nil
}
