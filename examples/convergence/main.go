// Convergence plots quality-over-budget curves for the TSMO variants on
// the simulated machine: the same evaluation budget, sampled every few
// hundred evaluations, rendered as an ASCII chart. It shows *when* each
// variant reaches its quality, complementing the paper's end-of-run
// tables.
package main

import (
	"fmt"
	"math"
	"os"

	"repro"
	"repro/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "convergence:", err)
		os.Exit(1)
	}
}

func run() error {
	in, err := repro.Generate(repro.GenConfig{Class: repro.R1, N: 150, Seed: 4})
	if err != nil {
		return err
	}
	base := repro.DefaultConfig()
	base.MaxEvaluations = 20000
	base.SampleEvery = 400
	base.Seed = 6

	curve := func(alg repro.Algorithm, procs int, glyph byte, name string) (viz.Series, error) {
		cfg := base
		cfg.Processors = procs
		res, err := repro.Solve(alg, in, cfg)
		if err != nil {
			return viz.Series{}, err
		}
		s := viz.Series{Name: name, Glyph: glyph}
		for _, sm := range res.Samples {
			if math.IsInf(sm.BestDistance, 1) {
				continue
			}
			// X axis: virtual time, so the variants' different speeds
			// are visible.
			s.X = append(s.X, sm.Time)
			s.Y = append(s.Y, sm.BestDistance)
		}
		return s, nil
	}

	seq, err := curve(repro.Sequential, 1, 's', "sequential")
	if err != nil {
		return err
	}
	asy, err := curve(repro.Asynchronous, 6, 'a', "async P=6")
	if err != nil {
		return err
	}
	col, err := curve(repro.Collaborative, 6, 'c', "collaborative P=6")
	if err != nil {
		return err
	}

	fmt.Printf("best feasible distance over virtual time on %s (%d evaluations each searcher)\n\n",
		in.Name, base.MaxEvaluations)
	plot := &viz.Scatter{Width: 76, Height: 22, XLabel: "virtual seconds", YLabel: "best feasible distance"}
	if err := plot.Render(os.Stdout, []viz.Series{seq, asy, col}); err != nil {
		return err
	}
	fmt.Println("\nasync reaches sequential quality in a fraction of the time; collaborative")
	fmt.Println("takes longer per iteration but ends lower (the paper's quality/runtime trade).")
	return nil
}
