// Asyncspeed reproduces the paper's headline runtime comparison in
// miniature: the synchronous and asynchronous master–worker TSMO on the
// simulated SGI Origin 3800 across processor counts. The asynchronous
// master, which stops waiting as soon as Algorithm 2's decision function
// fires, sails past the stragglers the synchronous barrier waits for.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "asyncspeed:", err)
		os.Exit(1)
	}
}

func run() error {
	in, err := repro.Generate(repro.GenConfig{Class: repro.R1, N: 400, Seed: 1})
	if err != nil {
		return err
	}
	base := repro.DefaultConfig()
	base.MaxEvaluations = 10000 // 1/10 of the paper's budget
	base.Seed = 9

	run := func(alg repro.Algorithm, procs int, machineSeed uint64) (float64, error) {
		cfg := base
		cfg.Processors = procs
		m := repro.Origin3800()
		m.Seed = machineSeed
		res, err := repro.SolveOn(alg, in, cfg, repro.NewSimRuntime(m))
		if err != nil {
			return 0, err
		}
		return res.Elapsed, nil
	}
	avg := func(alg repro.Algorithm, procs int) (float64, error) {
		const reps = 3
		var sum float64
		for i := uint64(0); i < reps; i++ {
			e, err := run(alg, procs, 100+i)
			if err != nil {
				return 0, err
			}
			sum += e
		}
		return sum / reps, nil
	}

	seq, err := avg(repro.Sequential, 1)
	if err != nil {
		return err
	}
	fmt.Printf("sequential TSMO on %s: %.1f simulated seconds (avg of 3 machine placements)\n\n", in.Name, seq)
	fmt.Printf("%6s %16s %16s %12s %12s\n", "procs", "sync runtime", "async runtime", "sync spd", "async spd")
	for _, p := range []int{3, 6, 12} {
		sy, err := avg(repro.Synchronous, p)
		if err != nil {
			return err
		}
		as, err := avg(repro.Asynchronous, p)
		if err != nil {
			return err
		}
		fmt.Printf("%6d %15.1fs %15.1fs %+11.1f%% %+11.1f%%\n",
			p, sy, as, (seq/sy-1)*100, (seq/as-1)*100)
	}
	fmt.Println("\nspeedup = (T_seq/T_par - 1)·100%, the paper's convention.")
	fmt.Println("note the asynchronous advantage and its dip at 12 processors, where the")
	fmt.Println("master's per-message handling becomes the bottleneck (paper §IV).")

	// Where does the synchronous variant lose its time? Ask the
	// simulator for per-process utilization at P=6.
	fmt.Println("\nprocessor utilization at P=6 (compute share of lifetime):")
	for _, alg := range []repro.Algorithm{repro.Synchronous, repro.Asynchronous} {
		cfg := base
		cfg.Processors = 6
		rt := repro.NewSimRuntime(repro.Origin3800())
		if _, err := repro.SolveOn(alg, in, cfg, rt); err != nil {
			return err
		}
		stats := repro.RuntimeStats(rt)
		fmt.Printf("  %-14s", alg.String())
		for id, st := range stats {
			role := "w"
			if id == 0 {
				role = "M"
			}
			fmt.Printf("  %s%d %3.0f%%", role, id, st.Utilization()*100)
		}
		fmt.Println()
	}
	fmt.Println("the synchronous workers idle in the barrier; the asynchronous ones don't.")
	return nil
}
