// Nsga2compare runs the experiment the paper proposes as future work
// (§V): the TSMO variants against a well-established multiobjective
// evolutionary algorithm — NSGA-II — at the same evaluation budget, scored
// with the set coverage metric.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "nsga2compare:", err)
		os.Exit(1)
	}
}

func run() error {
	in, err := repro.Generate(repro.GenConfig{Class: repro.R1, N: 100, Seed: 17})
	if err != nil {
		return err
	}
	const budget = 15000

	cfg := repro.DefaultConfig()
	cfg.MaxEvaluations = budget
	cfg.Seed = 1
	seq, err := repro.Solve(repro.Sequential, in, cfg)
	if err != nil {
		return err
	}
	cfg.Processors = 4
	col, err := repro.Solve(repro.Collaborative, in, cfg)
	if err != nil {
		return err
	}
	// NSGA-II and MOTS get the same budget as all collaborative
	// searchers together, the generous comparison.
	ev, err := repro.SolveNSGA2(in, repro.NSGA2Config{
		PopulationSize: 100,
		MaxEvaluations: col.Evaluations,
		Seed:           1,
	})
	if err != nil {
		return err
	}
	mo, err := repro.SolveMOTS(in, repro.MOTSConfig{
		Points:         8,
		MaxEvaluations: col.Evaluations,
		Seed:           1,
	})
	if err != nil {
		return err
	}

	seqF := repro.FrontObjectives(seq.Front, true)
	colF := repro.FrontObjectives(col.Front, true)
	evF := repro.FrontObjectives(ev.Front, true)
	moF := repro.FrontObjectives(mo.Front, true)

	best := func(objs []repro.Objectives) (d, v float64) {
		d, v = -1, -1
		for _, o := range objs {
			if d < 0 || o.Distance < d {
				d = o.Distance
			}
			if v < 0 || o.Vehicles < v {
				v = o.Vehicles
			}
		}
		return d, v
	}
	report := func(name string, objs []repro.Objectives, evals int) {
		d, v := best(objs)
		fmt.Printf("%-22s %6d evals, %2d feasible front members, best %8.1f distance / %2.0f vehicles\n",
			name, evals, len(objs), d, v)
	}
	report("sequential TSMO", seqF, seq.Evaluations)
	report("collaborative TSMO x4", colF, col.Evaluations)
	report("NSGA-II", evF, ev.Evaluations)
	report("MOTS (Hansen, simpl.)", moF, mo.Evaluations)

	fmt.Println("\nset coverage (row covers column):")
	names := []string{"seqTSMO", "collTSMO", "NSGA-II", "MOTS"}
	fronts := [][]repro.Objectives{seqF, colF, evF, moF}
	fmt.Printf("%10s", "")
	for _, n := range names {
		fmt.Printf(" %9s", n)
	}
	fmt.Println()
	for i, a := range fronts {
		fmt.Printf("%10s", names[i])
		for j, b := range fronts {
			if i == j {
				fmt.Printf(" %9s", "—")
				continue
			}
			fmt.Printf(" %8.0f%%", repro.Coverage(a, b)*100)
		}
		fmt.Println()
	}
	return nil
}
