// Weightedsum runs the comparison behind the paper's §II.C argument: is an
// unbiased multiobjective search a better use of the evaluation budget
// than solving the problem repeatedly with a single-criteria weighted sum
// and varied weights? Both approaches get the same total budget; fronts
// are scored with the set coverage metric.
package main

import (
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "weightedsum:", err)
		os.Exit(1)
	}
}

func run() error {
	in, err := repro.Generate(repro.GenConfig{Class: repro.C2, N: 100, Seed: 9})
	if err != nil {
		return err
	}
	const budget = 30000

	cfg := repro.DefaultConfig()
	cfg.MaxEvaluations = budget
	cfg.Seed = 2
	mo, err := repro.Solve(repro.Sequential, in, cfg)
	if err != nil {
		return err
	}

	ws, err := repro.SolveWeighted(in, repro.WeightedConfig{
		Weights:        repro.WeightLattice(3), // 10 weight vectors
		MaxEvaluations: budget,                 // same total budget
		Seed:           2,
	})
	if err != nil {
		return err
	}

	moF := repro.FrontObjectives(mo.Front, true)
	wsF := repro.FrontObjectives(ws.Front, true)

	fmt.Printf("instance %s, budget %d evaluations each\n\n", in.Name, budget)
	fmt.Printf("multiobjective TSMO:    %2d feasible front members\n", len(moF))
	for _, o := range moF {
		fmt.Printf("    %10.2f distance, %3.0f vehicles\n", o.Distance, o.Vehicles)
	}
	fmt.Printf("weighted-sum multistart: %2d feasible front members (from %d weight runs)\n",
		len(wsF), len(ws.PerWeight))
	for _, o := range wsF {
		fmt.Printf("    %10.2f distance, %3.0f vehicles\n", o.Distance, o.Vehicles)
	}

	fmt.Printf("\nset coverage: C(TSMO, weighted) = %.0f%%   C(weighted, TSMO) = %.0f%%\n",
		repro.Coverage(moF, wsF)*100, repro.Coverage(wsF, moF)*100)
	fmt.Println("\nthe weighted-sum approach splits the budget across fixed scalarizations,")
	fmt.Println("most of which converge to the same region; the multiobjective search")
	fmt.Println("spends the whole budget on one front (the paper's §II.C argument).")
	return nil
}
