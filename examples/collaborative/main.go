// Collaborative demonstrates the paper's multisearch variant (§III.E):
// several TSMO searchers with disturbed parameters run concurrently and
// send every improving solution to one peer chosen by a rotating
// communication list. The example contrasts its merged front against a
// sequential search with the same per-searcher budget, using the set
// coverage metric the paper reports.
package main

import (
	"fmt"
	"os"
	"sort"

	"repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "collaborative:", err)
		os.Exit(1)
	}
}

func run() error {
	in, err := repro.Generate(repro.GenConfig{Class: repro.RC1, N: 150, Seed: 21})
	if err != nil {
		return err
	}
	cfg := repro.DefaultConfig()
	cfg.MaxEvaluations = 12000
	cfg.Seed = 5

	seq, err := repro.Solve(repro.Sequential, in, cfg)
	if err != nil {
		return err
	}

	cfg.Processors = 6
	col, err := repro.Solve(repro.Collaborative, in, cfg)
	if err != nil {
		return err
	}

	printFront := func(name string, res *repro.Result) {
		front := res.FeasibleFront()
		sort.Slice(front, func(i, j int) bool { return front[i].Obj.Distance < front[j].Obj.Distance })
		fmt.Printf("%s: %d evaluations, %.0f simulated s, %d feasible front members\n",
			name, res.Evaluations, res.Elapsed, len(front))
		for _, s := range front {
			fmt.Printf("    %10.2f distance, %3.0f vehicles\n", s.Obj.Distance, s.Obj.Vehicles)
		}
	}
	printFront("sequential TSMO     ", seq)
	printFront("collaborative TSMO×6", col)

	a := repro.FrontObjectives(col.Front, true)
	b := repro.FrontObjectives(seq.Front, true)
	fmt.Printf("\nset coverage: C(coll, seq) = %.0f%%   C(seq, coll) = %.0f%%\n",
		repro.Coverage(a, b)*100, repro.Coverage(b, a)*100)
	fmt.Println("(C(X, Y) = share of Y's solutions weakly dominated by X — higher left")
	fmt.Println("number means the collaborative front covers the sequential one.)")
	return nil
}
