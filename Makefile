# Developer verify loop. `make verify` is the full gate a change must pass:
# build, vet, the complete test suite, and the race detector over the
# concurrency-heavy packages (the search core and the process simulator).

GO ?= go

.PHONY: build vet test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/deme/...

# bench refreshes BENCH_delta.json via scripts/bench.sh.
bench:
	./scripts/bench.sh

verify: build vet test race
