# Developer verify loop. `make verify` is the full gate a change must pass:
# build, vet, the complete test suite, the race detector over the
# concurrency-heavy packages (the search core and the process simulator),
# and the zero-allocation assertion on the disabled-telemetry hot path.

GO ?= go

.PHONY: build vet test race allocs chaos fuzz-smoke bench profile verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/deme/...

# allocs asserts the telemetry overhead contract: disabled-path recording
# calls allocate nothing, and a full searcher iteration allocates no more
# with the instruments enabled than with the layer off.
allocs:
	$(GO) test -run 'TestDisabledZeroAlloc|TestEnabledZeroAlloc' -count 1 -v ./internal/telemetry/
	$(GO) test -run 'TestSearcherIterationTelemetryAllocs' -count 1 -v ./internal/core/

# chaos runs the deterministic fault-injection suite under the race
# detector: every scenario must complete, stay bit-identical across
# repetitions, and no variant may deadlock when a process dies.
chaos:
	$(GO) test -race -count 1 -v \
	  -run 'TestChaosScenarios|TestChaosGoroutineNoDeadlock|TestSyncTrajectoryMatchesSequential|TestMalformedPayloadSurfacesAsError' \
	  ./internal/core/
	$(GO) test -race -count 1 -run 'TestFaulty|TestParseFaultPlans|TestGoroutineAlive' ./internal/deme/

# fuzz-smoke runs each fuzz target for FUZZTIME (default 30s) on top of the
# checked-in seed corpora.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDeltaMatchesApply -fuzztime $(FUZZTIME) ./internal/operators/
	$(GO) test -run '^$$' -fuzz FuzzFeasibilityGuard -fuzztime $(FUZZTIME) ./internal/operators/

# bench refreshes BENCH_delta.json and BENCH_telemetry.json via
# scripts/bench.sh (prior numbers are archived to BENCH_history.jsonl).
bench:
	./scripts/bench.sh

# profile runs a short goroutine-backend asynchronous search with the
# observability endpoints live and saves CPU and heap profiles next to a
# JSONL telemetry report. Inspect with: go tool pprof profiles/cpu.prof
profile: build
	mkdir -p profiles
	$(GO) run ./cmd/tsmo -alg asynchronous -procs 4 -backend goroutine \
	  -class R1 -n 200 -evals 60000 \
	  -telemetry profiles/run.jsonl -pprof 127.0.0.1:0 \
	  -cpuprofile profiles/cpu.prof -memprofile profiles/heap.prof
	@echo "profiles written to profiles/{cpu.prof,heap.prof,run.jsonl}"

verify: build vet test race allocs
