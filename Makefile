# Developer verify loop. `make verify` is the full gate a change must pass:
# formatting, build, vet, the complete test suite, the race detector over
# the concurrency-heavy packages (the search core and the process
# simulator), and the zero-allocation assertion on the disabled-telemetry
# hot path.

GO ?= go

.PHONY: fmt build vet test race allocs bench-smoke metrics-lint service-e2e recover-e2e dynamic-e2e tenant-e2e chaos cluster-e2e flaky-guard fuzz-smoke bench profile verify

fmt:
	@files=$$(gofmt -l .); if [ -n "$$files" ]; then \
	  echo "gofmt required on:"; echo "$$files"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/... ./internal/deme/... ./internal/cluster/...
	$(GO) test -race -count 1 -run 'TestShareSSEFanoutRace|TestShareIngressConcurrentSubscribers' ./internal/service/

# allocs asserts the observability overhead contract: disabled-path
# telemetry and tracing calls allocate nothing, and a full searcher
# iteration allocates no more with the instruments (or a live trace span)
# than with the layers off.
allocs:
	$(GO) test -run 'TestDisabledZeroAlloc|TestEnabledZeroAlloc' -count 1 -v ./internal/telemetry/
	$(GO) test -run 'TestDisabledZeroAlloc' -count 1 -v ./internal/trace/
	$(GO) test -run 'TestSearcherIterationTelemetryAllocs|TestSearcherIterationTraceAllocs' -count 1 -v ./internal/core/

# bench-smoke is the candidate engine's fast perf gate: the zero-alloc
# assertions on the sweep (full and granular) and the searcher's generate
# path, plus one untimed pass over the 400-customer benchmarks so a broken
# benchmark fails here rather than in a long scripts/bench.sh run.
bench-smoke:
	$(GO) test -run 'TestCandidatesZeroAlloc|TestGranularSweepDeterministic' -count 1 -v ./internal/operators/
	$(GO) test -run 'TestGenerateZeroAlloc' -count 1 -v ./internal/core/
	$(GO) test -run '^$$' -bench 'BenchmarkCandidates400|BenchmarkNeighborhood400|BenchmarkCandidatesInto400|BenchmarkCandidatesGranular400' \
	  -benchtime 1x ./internal/operators/
	$(GO) test -run '^$$' -bench 'BenchmarkSearcherIteration' -benchtime 1x ./internal/core/

# metrics-lint boots a real tsmod daemon on an ephemeral port, pushes one
# traced job through it, scrapes GET /metrics twice, and lints the
# Prometheus exposition: well-formed lines, one TYPE per family, no
# duplicate series, monotone cumulative histogram buckets, le="+Inf" equal
# to _count, and no counter decreasing between scrapes.
metrics-lint:
	$(GO) test -count 1 ./scripts/metricslint/
	$(GO) run ./scripts/metricslint

# service-e2e runs the solver-service stack — job queue, HTTP/SSE API,
# daemon signal handling, and the CLI client — under the race detector.
# Covers the acceptance path: submit, stream, cancel, drain on SIGTERM.
service-e2e:
	$(GO) test -race -count 1 ./internal/service/ ./cmd/tsmod/ ./cmd/tsmoctl/

# recover-e2e runs the durability acceptance suite under the race
# detector: checkpoint/resume bit-identity across every variant, the
# journal replay and crash-snapshot service tests, and the kill -9 daemon
# e2e (a real tsmod process SIGKILLed mid-job, restarted, and checked
# against an uninterrupted reference run).
recover-e2e:
	$(GO) test -race -count 1 -run 'TestResumeBitIdentical|TestResumeRejectsMismatch|TestCheckpointConfigGuards' ./internal/core/
	$(GO) test -race -count 1 -run 'TestJournal|TestDurable|TestCrashRecovery|TestIdempotent' ./internal/service/
	$(GO) test -race -count 1 -v -run 'TestKill9Recovery' ./cmd/tsmod/

# dynamic-e2e runs the live re-optimization acceptance battery under the
# race detector: the mutation model and splice/repair unit tests with the
# live-equals-resume and bit-identical replay goldens across all variants,
# the schedule-cache Rebind splice, the service PATCH/SSE/WAL e2e (batch
# and inline mutations, epoch pinning, 409/400 surfaces, flight-recorder
# marker, HTTP-level determinism), the tsmoctl mutate CLI with a timed
# -script replay, and the kill -9 mutation-replay chaos test (a real tsmod
# SIGKILLed in both exactly-once windows).
dynamic-e2e:
	$(GO) test -race -count 1 ./internal/dynamic/
	$(GO) test -race -count 1 -run 'TestEvalRebind' ./internal/solution/
	$(GO) test -race -count 1 -run 'TestE2EDynamic|TestE2EMutate|TestE2EResumeGranularKMismatch' ./internal/service/
	$(GO) test -race -count 1 -run 'TestMutateCommand' ./cmd/tsmoctl/
	$(GO) test -race -count 1 -v -run 'TestKill9MutationReplay' ./cmd/tsmod/

# tenant-e2e runs the multi-tenant admission battery under the race
# detector: the tenant registry and keyfile unit tests, the deficit
# round-robin scheduler contract, the 50:1 fair-share starvation
# scenario, virtual-clock rate-limit determinism, the credential
# rejection table, the mutation-storm chaos test, quota/readyz/deadline
# shedding, the torn mutate-then-ckpt WAL recovery case, the
# coordinator's verbatim Retry-After relay, and the tenant-aware CLI.
tenant-e2e:
	$(GO) test -race -count 1 ./internal/tenant/
	$(GO) test -race -count 1 \
	  -run 'TestScheduler|TestE2EFairShare|TestE2ESubmitRateLimit|TestE2EAuthRejection|TestE2EMutationStorm|TestE2EReadyzAndShed|TestE2EDeadlineShed|TestE2ETenant|TestTornMutateBeforeCkpt' \
	  ./internal/service/
	$(GO) test -race -count 1 -run 'TestSubmitProxyRetryAfterVerbatim' ./internal/cluster/
	$(GO) test -race -count 1 -run 'TestTenantCommands' ./cmd/tsmoctl/

# chaos runs the deterministic fault-injection suite under the race
# detector: every scenario must complete, stay bit-identical across
# repetitions, and no variant may deadlock when a process dies.
chaos:
	$(GO) test -race -count 1 -v \
	  -run 'TestChaosScenarios|TestChaosGoroutineNoDeadlock|TestSyncTrajectoryMatchesSequential|TestMalformedPayloadSurfacesAsError' \
	  ./internal/core/
	$(GO) test -race -count 1 -run 'TestFaulty|TestParseFaultPlans|TestGoroutineAlive' ./internal/deme/

# cluster-e2e runs the multi-node acceptance suite under the race
# detector: the 3-node collaborative-share golden (bit-identical replay,
# merged front dominates a same-budget single node), the kill-a-member
# migration chaos test, coordinator partition handling, work stealing, and
# the share fan-out/ingress race tests on the node side.
cluster-e2e:
	$(GO) test -race -count 1 -v \
	  -run 'TestClusterShareGolden|TestClusterShareDominatesSingleNode|TestClusterKillMemberMigrates|TestCoordinatorPartition|TestClusterSteal|TestMergeFronts|TestSubmitValidation' \
	  ./internal/cluster/
	$(GO) test -race -count 1 -run 'TestShareSSEFanoutRace|TestShareIngressConcurrentSubscribers' ./internal/service/

# flaky-guard reruns the service and cluster e2e suites three times with a
# shuffled test order to flush order- and timing-dependent failures. CI
# runs it non-blocking and uploads flaky-guard.log as an artifact.
flaky-guard:
	$(GO) test -race -count 3 -shuffle on ./internal/service/ ./internal/cluster/ > flaky-guard.log 2>&1 \
	  || (tail -n 100 flaky-guard.log; exit 1)
	@tail -n 4 flaky-guard.log

# fuzz-smoke runs each fuzz target for FUZZTIME (default 30s) on top of the
# checked-in seed corpora.
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzDeltaMatchesApply -fuzztime $(FUZZTIME) ./internal/operators/
	$(GO) test -run '^$$' -fuzz FuzzFeasibilityGuard -fuzztime $(FUZZTIME) ./internal/operators/
	$(GO) test -run '^$$' -fuzz FuzzClusterMessages -fuzztime $(FUZZTIME) ./internal/cluster/

# bench refreshes BENCH_delta.json, BENCH_telemetry.json and
# BENCH_service.json via scripts/bench.sh (prior numbers are archived to
# BENCH_history.jsonl).
bench:
	./scripts/bench.sh

# profile runs a short goroutine-backend asynchronous search with the
# observability endpoints live and saves CPU and heap profiles next to a
# JSONL telemetry report. Inspect with: go tool pprof profiles/cpu.prof
profile: build
	mkdir -p profiles
	$(GO) run ./cmd/tsmo -alg asynchronous -procs 4 -backend goroutine \
	  -class R1 -n 200 -evals 60000 \
	  -telemetry profiles/run.jsonl -pprof 127.0.0.1:0 \
	  -cpuprofile profiles/cpu.prof -memprofile profiles/heap.prof
	@echo "profiles written to profiles/{cpu.prof,heap.prof,run.jsonl}"

verify: fmt build vet test race allocs bench-smoke metrics-lint
