package repro

// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure, plus ablation benches for the design choices called out in
// DESIGN.md §5. The table benches run the full harness at a micro scale so
// `go test -bench=.` stays laptop-friendly; custom metrics report the
// reproduced quantities (virtual runtimes, speedups, coverage). Use
// cmd/experiments -scale medium|paper for the real reproduction.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/deme"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/operators"
	"repro/internal/rng"
	"repro/internal/vrptw"
)

// microScale shrinks a table reproduction to benchmark size.
func microScale() exp.Scale {
	return exp.Scale{
		Name:              "bench",
		Runs:              1,
		InstancesPerClass: 1,
		MaxEvaluations:    2000,
		NeighborhoodSize:  50,
		Processors:        []int{3},
		ShrinkN:           80,
	}
}

func benchTable(b *testing.B, id string) {
	b.Helper()
	spec, err := exp.TableByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var last *exp.TableResult
	for i := 0; i < b.N; i++ {
		last, err = exp.RunTable(spec, microScale(), uint64(42+i), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the reproduced headline quantities of the last repetition.
	for _, r := range last.Rows {
		switch r.Alg {
		case core.Sequential:
			b.ReportMetric(r.Runtime, "seq-vtime-s")
		case core.Asynchronous:
			b.ReportMetric(r.SpeedupPct, "async-speedup-%")
		case core.Collaborative:
			b.ReportMetric(r.CovDom*100, "coll-coverage-%")
		}
	}
}

// BenchmarkTableI reproduces Table I (400 city, small windows) in micro.
func BenchmarkTableI(b *testing.B) { benchTable(b, "I") }

// BenchmarkTableII reproduces Table II (400 city, large windows) in micro.
func BenchmarkTableII(b *testing.B) { benchTable(b, "II") }

// BenchmarkTableIII reproduces Table III (600 city, small windows) in micro.
func BenchmarkTableIII(b *testing.B) { benchTable(b, "III") }

// BenchmarkTableIV reproduces Table IV (600 city, large windows) in micro.
func BenchmarkTableIV(b *testing.B) { benchTable(b, "IV") }

// BenchmarkFigure1 regenerates the async trajectory of Figure 1.
func BenchmarkFigure1(b *testing.B) {
	var points int
	for i := 0; i < b.N; i++ {
		traj, err := exp.RunFigure1(60, 3, 1500, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		points = len(traj.Points)
	}
	b.ReportMetric(float64(points), "trajectory-points")
}

// benchInstance is shared by the ablation benches.
func benchInstance(b *testing.B, n int) *Instance {
	b.Helper()
	in, err := Generate(GenConfig{Class: R1, N: n, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkAlgorithms compares the real CPU cost of one run of each
// variant at a fixed small budget.
func BenchmarkAlgorithms(b *testing.B) {
	in := benchInstance(b, 100)
	for _, tc := range []struct {
		alg   Algorithm
		procs int
	}{
		{Sequential, 1}, {Synchronous, 3}, {Asynchronous, 3}, {Collaborative, 3}, {Combined, 4},
	} {
		b.Run(tc.alg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.MaxEvaluations = 2000
				cfg.NeighborhoodSize = 50
				cfg.Processors = tc.procs
				cfg.Seed = uint64(i)
				if _, err := Solve(tc.alg, in, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationArchiveSize probes the archive-capacity design choice
// (paper: 20) by reporting the best feasible distance found per size.
func BenchmarkAblationArchiveSize(b *testing.B) {
	in := benchInstance(b, 80)
	for _, size := range []int{5, 20, 80} {
		b.Run(itoa(size), func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.MaxEvaluations = 3000
				cfg.NeighborhoodSize = 50
				cfg.ArchiveSize = size
				cfg.Seed = uint64(i)
				res, err := Solve(Sequential, in, cfg)
				if err != nil {
					b.Fatal(err)
				}
				best = res.BestDistance()
			}
			b.ReportMetric(best, "best-distance")
		})
	}
}

// BenchmarkAblationWaitTimeout probes the asynchronous decision function's
// c3 threshold: a tiny timeout degenerates toward never waiting, a huge
// one toward the synchronous barrier.
func BenchmarkAblationWaitTimeout(b *testing.B) {
	in := benchInstance(b, 100)
	for _, tc := range []struct {
		name    string
		timeout float64
	}{{"tiny", 1e-6}, {"default", 0}, {"huge", 1e6}} {
		b.Run(tc.name, func(b *testing.B) {
			var vtime float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.MaxEvaluations = 2000
				cfg.NeighborhoodSize = 60
				cfg.Processors = 3
				cfg.WaitTimeout = tc.timeout
				cfg.Seed = uint64(i)
				res, err := Solve(Asynchronous, in, cfg)
				if err != nil {
					b.Fatal(err)
				}
				vtime = res.Elapsed
			}
			b.ReportMetric(vtime, "vtime-s")
		})
	}
}

// BenchmarkAblationMachine contrasts the calibrated Origin 3800 model with
// an ideal machine, isolating algorithmic from machine effects.
func BenchmarkAblationMachine(b *testing.B) {
	in := benchInstance(b, 100)
	for _, tc := range []struct {
		name string
		m    Machine
	}{{"origin3800", Origin3800()}, {"ideal", IdealMachine()}} {
		b.Run(tc.name, func(b *testing.B) {
			var vtime float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.MaxEvaluations = 2000
				cfg.NeighborhoodSize = 60
				cfg.Processors = 3
				cfg.Seed = uint64(i)
				res, err := SolveOn(Asynchronous, in, cfg, NewSimRuntime(tc.m))
				if err != nil {
					b.Fatal(err)
				}
				vtime = res.Elapsed
			}
			b.ReportMetric(vtime, "vtime-s")
		})
	}
}

// BenchmarkAblationShareRouting contrasts the paper's rotating
// single-recipient communication list with broadcasting improving
// solutions to every peer, reporting exchanged-message counts and the
// collaborative run's virtual time.
func BenchmarkAblationShareRouting(b *testing.B) {
	in := benchInstance(b, 80)
	for _, tc := range []struct {
		name      string
		broadcast bool
	}{{"rotating-list", false}, {"broadcast", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var shares int
			var vtime float64
			for i := 0; i < b.N; i++ {
				cfg := DefaultConfig()
				cfg.MaxEvaluations = 3000
				cfg.NeighborhoodSize = 50
				cfg.Processors = 4
				cfg.RestartIterations = 20
				cfg.ShareBroadcast = tc.broadcast
				cfg.Seed = uint64(i)
				res, err := Solve(Collaborative, in, cfg)
				if err != nil {
					b.Fatal(err)
				}
				shares = res.Shares
				vtime = res.Elapsed
			}
			b.ReportMetric(float64(shares), "shares")
			b.ReportMetric(vtime, "vtime-s")
		})
	}
}

// BenchmarkAblationOperators measures neighborhood generation with the
// full operator mix against single-operator generators (the paper draws
// all five with equal probability).
func BenchmarkAblationOperators(b *testing.B) {
	raw, err := vrptw.Generate(vrptw.GenConfig{Class: vrptw.R1, N: 100, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s := initialSolution(b, raw)
	cases := map[string][]operators.Operator{"all-five": nil}
	for _, op := range operators.All() {
		cases[op.Name()] = []operators.Operator{op}
	}
	for name, ops := range cases {
		b.Run(name, func(b *testing.B) {
			g := operators.NewGenerator(raw, ops)
			r := rng.New(1)
			for i := 0; i < b.N; i++ {
				g.Neighborhood(s, r, 100)
			}
		})
	}
}

func initialSolution(b *testing.B, in *vrptw.Instance) *Solution {
	b.Helper()
	cfg := DefaultConfig()
	cfg.MaxEvaluations = 300
	cfg.NeighborhoodSize = 30
	res, err := SolveOn(Sequential, in, cfg, NewSimRuntime(IdealMachine()))
	if err != nil {
		b.Fatal(err)
	}
	return res.Front[0]
}

// BenchmarkCoverageMetric measures the paper's quality metric itself.
func BenchmarkCoverageMetric(b *testing.B) {
	in := benchInstance(b, 60)
	cfg := DefaultConfig()
	cfg.MaxEvaluations = 1500
	cfg.NeighborhoodSize = 40
	a, err := Solve(Sequential, in, cfg)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Seed = 2
	c, err := Solve(Sequential, in, cfg)
	if err != nil {
		b.Fatal(err)
	}
	oa, oc := metrics.Objs(a.Front), metrics.Objs(c.Front)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Coverage(oa, oc)
	}
}

// BenchmarkSimBackend measures the discrete-event scheduler's raw
// throughput: ping-pong rounds between two processes.
func BenchmarkSimBackend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := deme.NewSim(deme.Ideal())
		err := s.Run(2, func(p deme.Proc) {
			if p.ID() == 0 {
				for k := 0; k < 100; k++ {
					p.Send(1, 1, nil, 0)
					p.Recv()
				}
				p.Send(1, 2, nil, 0)
			} else {
				for {
					m, ok := p.Recv()
					if !ok || m.Tag == 2 {
						return
					}
					p.Send(0, 1, nil, 0)
				}
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
