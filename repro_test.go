package repro

import (
	"bytes"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does.
func TestFacadeEndToEnd(t *testing.T) {
	in, err := Generate(GenConfig{Class: R1, N: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxEvaluations = 2000
	cfg.NeighborhoodSize = 50
	cfg.Seed = 4

	res, err := Solve(Sequential, in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FeasibleFront()) == 0 {
		t.Fatal("no feasible solutions")
	}

	cfg.Processors = 3
	par, err := SolveOn(Asynchronous, in, cfg, NewSimRuntime(Origin3800()))
	if err != nil {
		t.Fatal(err)
	}
	if par.Elapsed >= res.Elapsed {
		t.Logf("note: async (%.1f) not faster than sequential (%.1f) at this tiny scale", par.Elapsed, res.Elapsed)
	}

	a := FrontObjectives(res.Front, true)
	b := FrontObjectives(par.Front, true)
	if c := Coverage(a, b); c < 0 || c > 1 {
		t.Errorf("coverage out of range: %g", c)
	}
}

func TestFacadeSolomonRoundTrip(t *testing.T) {
	in, err := Generate(GenConfig{Class: C1, N: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSolomon(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSolomon(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != in.N() {
		t.Fatalf("N mismatch after round trip: %d vs %d", back.N(), in.N())
	}
}

func TestFacadeParsers(t *testing.T) {
	if c, err := ParseClass("rc1"); err != nil || c != RC1 {
		t.Errorf("ParseClass: %v, %v", c, err)
	}
	if a, err := ParseAlgorithm("collaborative"); err != nil || a != Collaborative {
		t.Errorf("ParseAlgorithm: %v, %v", a, err)
	}
}

func TestFacadeNSGA2(t *testing.T) {
	in, err := Generate(GenConfig{Class: R1, N: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveNSGA2(in, NSGA2Config{PopulationSize: 16, MaxEvaluations: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty NSGA-II front")
	}
}

func TestFacadeGoroutineBackend(t *testing.T) {
	in, err := Generate(GenConfig{Class: R2, N: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.MaxEvaluations = 1000
	cfg.NeighborhoodSize = 40
	cfg.Processors = 2
	res, err := SolveOn(Collaborative, in, cfg, NewGoroutineRuntime())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front on goroutine backend")
	}
}

func TestFacadeMOTSAndStats(t *testing.T) {
	in, err := Generate(GenConfig{Class: R1, N: 30, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveMOTS(in, MOTSConfig{Points: 3, MaxEvaluations: 600, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty MOTS front")
	}
	// RuntimeStats through the facade.
	cfg := DefaultConfig()
	cfg.MaxEvaluations = 500
	cfg.NeighborhoodSize = 30
	cfg.Processors = 3
	rt := NewSimRuntime(Origin3800())
	if _, err := SolveOn(Asynchronous, in, cfg, rt); err != nil {
		t.Fatal(err)
	}
	stats := RuntimeStats(rt)
	if len(stats) != 3 {
		t.Fatalf("got %d proc stats, want 3", len(stats))
	}
	if stats[0].MsgsSent == 0 {
		t.Error("master sent no messages")
	}
}

func TestFacadeWeighted(t *testing.T) {
	in, err := Generate(GenConfig{Class: C1, N: 25, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveWeighted(in, WeightedConfig{
		Weights:          WeightLattice(1),
		MaxEvaluations:   600,
		NeighborhoodSize: 20,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 || len(res.PerWeight) != 3 {
		t.Fatalf("unexpected weighted result: %d front, %d per-weight", len(res.Front), len(res.PerWeight))
	}
}
